//! Normalization of [`Term`]s into linear expressions over interned atoms.
//!
//! A [`LinExpr`] is `constant + Σ coeff·atom` with `i128` coefficients. An
//! atom is either a free symbol or an *opaque* interned sub-term: an
//! uninterpreted function application (with linearly-normalized arguments,
//! giving syntactic congruence — `c(i+0)` and `c(i)` intern to the same
//! atom), a non-linear product, a division, or a modulo.

use std::collections::HashMap;
use std::fmt;

use crate::term::Term;

/// Interned atom identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

/// What an atom stands for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AtomKey {
    /// Free integer symbol.
    Sym(String),
    /// Uninterpreted application with normalized arguments.
    App(String, Vec<LinExpr>),
    /// Non-linear product of two normalized expressions.
    MulOpaque(LinExpr, LinExpr),
    /// Truncated division.
    DivOpaque(LinExpr, LinExpr),
    /// Modulo.
    ModOpaque(LinExpr, LinExpr),
}

/// Intern table mapping atom keys to dense ids.
#[derive(Debug, Clone, Default)]
pub struct AtomTable {
    keys: Vec<AtomKey>,
    map: HashMap<AtomKey, AtomId>,
}

impl AtomTable {
    /// Create an empty table.
    pub fn new() -> AtomTable {
        AtomTable::default()
    }

    /// Intern a key, returning its id.
    pub fn intern(&mut self, key: AtomKey) -> AtomId {
        if let Some(id) = self.map.get(&key) {
            return *id;
        }
        let id = AtomId(self.keys.len() as u32);
        self.keys.push(key.clone());
        self.map.insert(key, id);
        id
    }

    /// Intern a plain symbol.
    pub fn sym(&mut self, name: &str) -> AtomId {
        self.intern(AtomKey::Sym(name.to_string()))
    }

    /// Key of an atom.
    pub fn key(&self, id: AtomId) -> &AtomKey {
        &self.keys[id.0 as usize]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Human-readable rendering of an atom (for diagnostics).
    pub fn render(&self, id: AtomId) -> String {
        match self.key(id) {
            AtomKey::Sym(s) => s.clone(),
            AtomKey::App(f, args) => {
                let args: Vec<String> = args.iter().map(|a| self.render_lin(a)).collect();
                format!("{f}({})", args.join(", "))
            }
            AtomKey::MulOpaque(a, b) => {
                format!("({})*({})", self.render_lin(a), self.render_lin(b))
            }
            AtomKey::DivOpaque(a, b) => {
                format!("({})/({})", self.render_lin(a), self.render_lin(b))
            }
            AtomKey::ModOpaque(a, b) => {
                format!("({}) mod ({})", self.render_lin(a), self.render_lin(b))
            }
        }
    }

    /// Human-readable rendering of a linear expression.
    pub fn render_lin(&self, e: &LinExpr) -> String {
        let mut s = String::new();
        let mut first = true;
        for (atom, c) in &e.terms {
            if !first {
                s.push_str(" + ");
            }
            first = false;
            if *c == 1 {
                s.push_str(&self.render(*atom));
            } else {
                s.push_str(&format!("{}*{}", c, self.render(*atom)));
            }
        }
        if e.constant != 0 || first {
            if !first {
                s.push_str(" + ");
            }
            s.push_str(&e.constant.to_string());
        }
        s
    }
}

/// A linear expression `constant + Σ coeff·atom`; terms sorted by atom id,
/// coefficients nonzero.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    /// Constant part.
    pub constant: i128,
    /// `(atom, coefficient)` pairs, sorted by atom, coefficients ≠ 0.
    pub terms: Vec<(AtomId, i128)>,
}

impl LinExpr {
    /// The constant expression.
    pub fn constant(v: i128) -> LinExpr {
        LinExpr {
            constant: v,
            terms: Vec::new(),
        }
    }

    /// A single atom with coefficient 1.
    pub fn atom(id: AtomId) -> LinExpr {
        LinExpr {
            constant: 0,
            terms: vec![(id, 1)],
        }
    }

    /// True if the expression has no atom terms.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of `atom` (0 if absent).
    pub fn coeff(&self, atom: AtomId) -> i128 {
        self.terms
            .iter()
            .find(|(a, _)| *a == atom)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// `self + k·other`.
    pub fn add_scaled(&self, other: &LinExpr, k: i128) -> LinExpr {
        let mut terms: Vec<(AtomId, i128)> =
            Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            let take_left = match (self.terms.get(i), other.terms.get(j)) {
                (Some((a, _)), Some((b, _))) => {
                    if a == b {
                        let c = self.terms[i].1 + k * other.terms[j].1;
                        if c != 0 {
                            terms.push((*a, c));
                        }
                        i += 1;
                        j += 1;
                        continue;
                    }
                    a < b
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_left {
                terms.push(self.terms[i]);
                i += 1;
            } else {
                let (a, c) = other.terms[j];
                let c = k * c;
                if c != 0 {
                    terms.push((a, c));
                }
                j += 1;
            }
        }
        LinExpr {
            constant: self.constant + k * other.constant,
            terms,
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        self.add_scaled(other, 1)
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add_scaled(other, -1)
    }

    /// `k·self`.
    pub fn scale(&self, k: i128) -> LinExpr {
        if k == 0 {
            return LinExpr::constant(0);
        }
        LinExpr {
            constant: self.constant * k,
            terms: self.terms.iter().map(|(a, c)| (*a, c * k)).collect(),
        }
    }

    /// GCD of all atom coefficients (0 if constant).
    pub fn coeff_gcd(&self) -> i128 {
        let mut g: i128 = 0;
        for (_, c) in &self.terms {
            g = gcd(g, c.abs());
        }
        g
    }

    /// Atoms appearing with nonzero coefficient.
    pub fn atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.terms.iter().map(|(a, _)| *a)
    }
}

/// Greatest common divisor on absolute values.
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Errors during normalization (coefficient overflow guard).
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizeError(pub String);

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "normalization error: {}", self.0)
    }
}

impl std::error::Error for NormalizeError {}

/// Normalize a term into a linear expression over interned atoms.
pub fn normalize(term: &Term, table: &mut AtomTable) -> Result<LinExpr, NormalizeError> {
    const LIMIT: i128 = 1 << 62;
    let check = |v: i128| -> Result<i128, NormalizeError> {
        if v.abs() > LIMIT {
            Err(NormalizeError("coefficient overflow".into()))
        } else {
            Ok(v)
        }
    };
    match term {
        Term::Int(v) => Ok(LinExpr::constant(*v as i128)),
        Term::Sym(s) => {
            let id = table.sym(s);
            Ok(LinExpr::atom(id))
        }
        Term::App(f, args) => {
            let nargs: Result<Vec<LinExpr>, _> = args.iter().map(|a| normalize(a, table)).collect();
            let id = table.intern(AtomKey::App(f.clone(), nargs?));
            Ok(LinExpr::atom(id))
        }
        Term::Add(a, b) => {
            let a = normalize(a, table)?;
            let b = normalize(b, table)?;
            let r = a.add(&b);
            check(r.constant)?;
            Ok(r)
        }
        Term::Sub(a, b) => {
            let a = normalize(a, table)?;
            let b = normalize(b, table)?;
            let r = a.sub(&b);
            check(r.constant)?;
            Ok(r)
        }
        Term::Neg(a) => Ok(normalize(a, table)?.scale(-1)),
        Term::Mul(a, b) => {
            let a = normalize(a, table)?;
            let b = normalize(b, table)?;
            if a.is_const() {
                check(a.constant)?;
                Ok(b.scale(a.constant))
            } else if b.is_const() {
                check(b.constant)?;
                Ok(a.scale(b.constant))
            } else {
                // Non-linear: opaque atom, canonicalized by ordering the
                // operands deterministically so `a*b` and `b*a` unify.
                let (x, y) = if lin_cmp(&a, &b) == std::cmp::Ordering::Greater {
                    (b, a)
                } else {
                    (a, b)
                };
                let id = table.intern(AtomKey::MulOpaque(x, y));
                Ok(LinExpr::atom(id))
            }
        }
        Term::Div(a, b) => {
            let a = normalize(a, table)?;
            let b = normalize(b, table)?;
            if b.is_const() && b.constant != 0 && a.is_const() {
                return Ok(LinExpr::constant(a.constant / b.constant));
            }
            let id = table.intern(AtomKey::DivOpaque(a, b));
            Ok(LinExpr::atom(id))
        }
        Term::Mod(a, b) => {
            let a = normalize(a, table)?;
            let b = normalize(b, table)?;
            if b.is_const() && b.constant != 0 && a.is_const() {
                return Ok(LinExpr::constant(a.constant % b.constant));
            }
            let id = table.intern(AtomKey::ModOpaque(a, b));
            Ok(LinExpr::atom(id))
        }
    }
}

fn lin_cmp(a: &LinExpr, b: &LinExpr) -> std::cmp::Ordering {
    (a.constant, &a.terms).cmp(&(b.constant, &b.terms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn norm(t: &Term, tab: &mut AtomTable) -> LinExpr {
        normalize(t, tab).unwrap()
    }

    #[test]
    fn linear_combination_collapses() {
        let mut tab = AtomTable::new();
        // 2*i + 3 - i + 1  ==  i + 4
        let t = Term::int(2) * Term::sym("i") + Term::int(3) - Term::sym("i") + Term::int(1);
        let e = norm(&t, &mut tab);
        let i = tab.sym("i");
        assert_eq!(e.constant, 4);
        assert_eq!(e.terms, vec![(i, 1)]);
    }

    #[test]
    fn cancellation_to_zero() {
        let mut tab = AtomTable::new();
        let t = Term::sym("i") - Term::sym("i");
        let e = norm(&t, &mut tab);
        assert!(e.is_const());
        assert_eq!(e.constant, 0);
    }

    #[test]
    fn syntactic_congruence_of_apps() {
        let mut tab = AtomTable::new();
        // c(i + 0) and c(i) intern to the same atom.
        let a = norm(
            &Term::app("c", vec![Term::sym("i") + Term::int(0)]),
            &mut tab,
        );
        let b = norm(&Term::app("c", vec![Term::sym("i")]), &mut tab);
        assert_eq!(a, b);
        // c(i + 1) is a different atom.
        let c = norm(
            &Term::app("c", vec![Term::sym("i") + Term::int(1)]),
            &mut tab,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn nonlinear_product_is_opaque_and_commutative() {
        let mut tab = AtomTable::new();
        let ab = norm(&(Term::sym("a") * Term::sym("b")), &mut tab);
        let ba = norm(&(Term::sym("b") * Term::sym("a")), &mut tab);
        assert_eq!(ab, ba);
        assert_eq!(ab.terms.len(), 1);
    }

    #[test]
    fn constant_product_stays_linear() {
        let mut tab = AtomTable::new();
        let t = (Term::sym("i") + Term::int(2)) * Term::int(3);
        let e = norm(&t, &mut tab);
        let i = tab.sym("i");
        assert_eq!(e.constant, 6);
        assert_eq!(e.coeff(i), 3);
    }

    #[test]
    fn const_div_and_mod_fold() {
        let mut tab = AtomTable::new();
        assert_eq!(
            norm(
                &Term::Div(Box::new(Term::int(7)), Box::new(Term::int(2))),
                &mut tab
            )
            .constant,
            3
        );
        assert_eq!(
            norm(
                &Term::Mod(Box::new(Term::int(7)), Box::new(Term::int(2))),
                &mut tab
            )
            .constant,
            1
        );
    }

    #[test]
    fn add_scaled_merges_sorted() {
        let mut tab = AtomTable::new();
        let i = tab.sym("i");
        let j = tab.sym("j");
        let a = LinExpr {
            constant: 1,
            terms: vec![(i, 2)],
        };
        let b = LinExpr {
            constant: 3,
            terms: vec![(i, -2), (j, 5)],
        };
        let r = a.add_scaled(&b, 1);
        assert_eq!(r.constant, 4);
        assert_eq!(r.terms, vec![(j, 5)]);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn render_is_readable() {
        let mut tab = AtomTable::new();
        let t = Term::app("c", vec![Term::sym("i")]) + Term::int(7);
        let e = norm(&t, &mut tab);
        assert_eq!(tab.render_lin(&e), "c(i) + 7");
    }
}
