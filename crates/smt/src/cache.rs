//! Canonical-query proof caching.
//!
//! FormAD's analyses issue many *structurally similar* queries: the same
//! disjointness question reappears across symmetric pairs, across arrays,
//! across regions, across retries of the escalation ladder, and across
//! whole benchmark suites that re-analyze the same kernels. A query is a
//! CNF clause stack over interned atoms; two queries that differ only in a
//! bijective renaming of free symbols and uninterpreted function names are
//! equisatisfiable, so one prover verdict serves them all.
//!
//! [`canonical_query_key`] computes a deterministic renaming-invariant key
//! for a clause stack: every literal is expanded structurally (atom ids
//! resolved through the [`AtomTable`], so keys are comparable *across*
//! solvers with independently grown tables), then a canonical bijective
//! renaming of symbols/function names to `s0, s1, …` / `f0, f1, …` is
//! found by color refinement with individualization, and the clause set
//! is rendered under it — term order, `=`/`≠` polarity, literal and
//! clause order all derive from the canonical ranks, with duplicates
//! dropped, so any bijective renaming of the input yields the same key.
//!
//! [`ProofCache`] is a sharded concurrent map from canonical keys to
//! *definite* verdicts. `Unknown` results are never stored and never
//! served: an `Unknown` is a property of one run's budget/deadline, not of
//! the query, and caching it would let one starved attempt poison every
//! later, better-funded attempt. Cache invalidation is by construction —
//! the key is a pure function of the complete assertion stack, so there is
//! no aliasing between different models and nothing to invalidate.
//!
//! Soundness: the full canonical string is the map key (no hashing on the
//! lookup path), so a collision cannot serve a verdict for a different
//! query; and a served `Unsat` is backed by the derivation of the run that
//! inserted it, which is valid for every query with the same canonical
//! form.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::formula::{Clause, Rel};
use crate::linexpr::{AtomKey, AtomTable, LinExpr};
use crate::solver::SatResult;

/// Number of lock shards; keys are distributed by a cheap FNV hash so
/// concurrent workers rarely contend on the same shard.
const SHARDS: usize = 16;

#[derive(Debug, Default)]
struct CacheInner {
    shards: [Mutex<HashMap<String, bool>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl CacheInner {
    fn shard_index(key: &str) -> usize {
        // FNV-1a over the key bytes; only shard selection, never identity.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % SHARDS as u64) as usize
    }

    fn get(&self, key: &str) -> Option<bool> {
        self.shards[Self::shard_index(key)]
            .lock()
            .map_or(None, |m| m.get(key).copied())
    }
}

/// Concurrent, sharded map from canonical query keys to definite
/// `Sat`/`Unsat` verdicts. Cloning is cheap (shared handle); clones share
/// one underlying map, which is how a cache is shared across arrays,
/// regions, and whole kernel suites.
///
/// For deterministic parallel analysis, a cache can be layered: an
/// [`overlay`](ProofCache::overlay) reads through to its parents but
/// writes only to its own private map. Workers each get an overlay, so a
/// worker's lookups observe exactly (entries published before the
/// fan-out) ∪ (its own inserts) — never a sibling's in-flight inserts —
/// making hit/miss behavior independent of thread scheduling. After the
/// workers join, the coordinator [`absorb`](ProofCache::absorb)s the
/// overlays in a fixed order to publish their verdicts.
///
/// Overlays chain: an overlay of an overlay reads its own entries, then
/// each ancestor layer from nearest to the base cache. A long-lived
/// service uses this to give every request a private layer over the
/// shared base cache while the request's region workers each layer a
/// further overlay on top — worker lookups still see the warm base. A
/// layer is discarded (rolled back) by simply never absorbing it.
#[derive(Debug, Clone, Default)]
pub struct ProofCache {
    inner: Arc<CacheInner>,
    /// Read-through ancestors, nearest first.
    parents: Vec<Arc<CacheInner>>,
}

impl ProofCache {
    /// Create an empty cache.
    pub fn new() -> ProofCache {
        ProofCache::default()
    }

    /// A private write layer over this cache: lookups read this cache's
    /// current entries and those of its own ancestors (read-only),
    /// inserts stay in the overlay until
    /// [`absorb`](ProofCache::absorb)ed. Overlays nest to any depth; each
    /// level keeps read access to every layer beneath it.
    pub fn overlay(&self) -> ProofCache {
        let mut parents = Vec::with_capacity(self.parents.len() + 1);
        parents.push(Arc::clone(&self.inner));
        parents.extend(self.parents.iter().cloned());
        ProofCache {
            inner: Arc::new(CacheInner::default()),
            parents,
        }
    }

    /// Number of read-through layers beneath this cache (0 for a base
    /// cache, 1 for a direct overlay, …).
    pub fn depth(&self) -> usize {
        self.parents.len()
    }

    /// Publish an overlay's privately-inserted verdicts into this cache.
    /// Idempotent in effect: a canonical key has exactly one definite
    /// verdict, so duplicate publishes are harmless.
    pub fn absorb(&self, overlay: &ProofCache) {
        for (idx, shard) in overlay.inner.shards.iter().enumerate() {
            let Ok(src) = shard.lock() else { continue };
            if src.is_empty() {
                continue;
            }
            if let Ok(mut dst) = self.inner.shards[idx].lock() {
                for (k, v) in src.iter() {
                    dst.insert(k.clone(), *v);
                }
            }
        }
    }

    /// Look up a verdict (own entries, then each parent layer from
    /// nearest to the base). Counts a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<SatResult> {
        let found = self
            .inner
            .get(key)
            .or_else(|| self.parents.iter().find_map(|p| p.get(key)));
        match found {
            Some(sat) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(if sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                })
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a verdict. `Unknown` results are rejected (returns `false`):
    /// the cache only ever holds definite answers.
    pub fn insert(&self, key: String, result: SatResult) -> bool {
        let sat = match result {
            SatResult::Sat => true,
            SatResult::Unsat => false,
            SatResult::Unknown(_) => return false,
        };
        let idx = CacheInner::shard_index(&key);
        if let Ok(mut m) = self.inner.shards[idx].lock() {
            m.insert(key, sat);
        }
        self.inner.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().map_or(0, |m| m.len()))
            .sum()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached verdict (counters are kept).
    pub fn clear(&self) {
        for s in &self.inner.shards {
            if let Ok(mut m) = s.lock() {
                m.clear();
            }
        }
    }

    /// Lifetime hit count across every clone of this cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count across every clone of this cache.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Lifetime insert count across every clone of this cache.
    pub fn inserts(&self) -> u64 {
        self.inner.inserts.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Canonicalization.
// ---------------------------------------------------------------------

/// Structural atom representation with original names, used both as the
/// deterministic sort key and as the tree the renamer walks.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum CanonAtom {
    Sym(String),
    App(String, Vec<CanonLin>),
    Mul(Box<CanonLin>, Box<CanonLin>),
    Div(Box<CanonLin>, Box<CanonLin>),
    Mod(Box<CanonLin>, Box<CanonLin>),
}

/// A linear expression with structurally-expanded atoms, terms sorted by
/// atom structure (not by table-local interning order).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CanonLin {
    terms: Vec<(CanonAtom, i128)>,
    constant: i128,
}

fn canon_atom(key: &AtomKey, table: &AtomTable) -> CanonAtom {
    match key {
        AtomKey::Sym(s) => CanonAtom::Sym(s.clone()),
        AtomKey::App(f, args) => CanonAtom::App(
            f.clone(),
            args.iter().map(|a| canon_lin_raw(a, table)).collect(),
        ),
        AtomKey::MulOpaque(a, b) => CanonAtom::Mul(
            Box::new(canon_lin_raw(a, table)),
            Box::new(canon_lin_raw(b, table)),
        ),
        AtomKey::DivOpaque(a, b) => CanonAtom::Div(
            Box::new(canon_lin_raw(a, table)),
            Box::new(canon_lin_raw(b, table)),
        ),
        AtomKey::ModOpaque(a, b) => CanonAtom::Mod(
            Box::new(canon_lin_raw(a, table)),
            Box::new(canon_lin_raw(b, table)),
        ),
    }
}

fn canon_lin_raw(e: &LinExpr, table: &AtomTable) -> CanonLin {
    let mut terms: Vec<(CanonAtom, i128)> = e
        .terms
        .iter()
        .map(|(a, c)| (canon_atom(table.key(*a), table), *c))
        .collect();
    terms.sort();
    CanonLin {
        terms,
        constant: e.constant,
    }
}

/// A canonical literal: relation + structurally-expanded expression. Sign
/// normalization for `=`/`≠` (where `e ⋈ 0` and `-e ⋈ 0` are the same
/// constraint) happens at render time — the polarity whose rendering is
/// lexicographically smaller wins, a choice independent of any naming.
/// `≤` is not symmetric and keeps its sign.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CanonLit {
    rel: u8,
    expr: CanonLin,
}

fn canon_lit(rel: Rel, expr: &LinExpr, table: &AtomTable) -> CanonLit {
    CanonLit {
        rel: match rel {
            Rel::Eq => 0,
            Rel::Ne => 1,
            Rel::Le => 2,
        },
        expr: canon_lin_raw(expr, table),
    }
}

// ---------------------------------------------------------------------
// Canonical renaming search.
//
// Sorting clauses by their original-name structure and then renaming in
// first-occurrence order is NOT renaming-invariant: a renaming can
// reorder the sort, which changes which name is "first" and thus the
// whole key. Instead, the renaming itself is canonicalized first — hash
// -based color refinement over the names (each name's color is refined
// by how it sits in the clause structure), with individualization for
// names the refinement cannot distinguish — and only then is the clause
// set rendered, with term order, literal polarity, and clause order all
// derived from the canonical ranks rather than from the original names.
//
// Refinement runs entirely on integer hashes over an id-resolved copy of
// the query (this sits on the hot path of every cached `check()`);
// strings are built once, for the final emission.
// ---------------------------------------------------------------------

// Rendering happens on the id-resolved query (see `IQuery` below): name
// occurrences emit their canonical rank through a dense `Vec<usize>`
// indexed by interned id, so the hot final emission never hashes a name
// string. The `=`/`≠` polarity is fixed by the smaller polarity *hash*
// (the same normalization the refinement hashes use), so each literal is
// rendered exactly once.

// --- Id-resolved query for hash refinement ---------------------------

/// Mirror of [`CanonAtom`] with names resolved to dense ids (symbols and
/// functions share one id space: symbols first, then functions).
#[derive(Debug)]
enum IAtom {
    Sym(usize),
    App(usize, Vec<ILin>),
    Mul(Box<ILin>, Box<ILin>),
    Div(Box<ILin>, Box<ILin>),
    Mod(Box<ILin>, Box<ILin>),
}

#[derive(Debug)]
struct ILin {
    terms: Vec<(IAtom, i128)>,
    constant: i128,
}

#[derive(Debug)]
struct ILit {
    rel: u8,
    expr: ILin,
}

/// The query with names interned: id-resolved clauses plus, per name, the
/// indices of the clauses mentioning it.
struct IQuery {
    clauses: Vec<Vec<ILit>>,
    incidence: Vec<Vec<usize>>,
    sym_names: Vec<String>,
    fn_names: Vec<String>,
}

/// splitmix64-style two-input mixer.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a
        .rotate_left(23)
        .wrapping_add(b.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    x
}

fn hash_i128(c: i128) -> u64 {
    mix(c as u64, (c >> 64) as u64)
}

/// Color of a name occurrence: its current color, or the marker when it
/// is the name whose signature is being computed.
fn occ_color(colors: &[u64], id: usize, mark: usize) -> u64 {
    if id == mark {
        0x5EED_0000_0000_004D
    } else {
        colors[id]
    }
}

/// Hash a linear combination under the current colors, returning the
/// hashes of both polarities (`e` and `-e`). Terms combine commutatively
/// (wrapping add) so the hash is independent of stored term order.
fn ilin_hash(e: &ILin, colors: &[u64], mark: usize) -> (u64, u64) {
    let mut pos: u64 = 0x6C1B_8E4F_0D2A_9C35;
    let mut neg: u64 = 0x6C1B_8E4F_0D2A_9C35;
    for (a, c) in &e.terms {
        let ah = iatom_hash(a, colors, mark);
        pos = pos.wrapping_add(mix(ah, hash_i128(*c)));
        neg = neg.wrapping_add(mix(ah, hash_i128(-*c)));
    }
    (
        mix(pos, hash_i128(e.constant)),
        mix(neg, hash_i128(-e.constant)),
    )
}

fn iatom_hash(a: &IAtom, colors: &[u64], mark: usize) -> u64 {
    match a {
        IAtom::Sym(id) => mix(0xA1, occ_color(colors, *id, mark)),
        IAtom::App(id, args) => {
            // Argument order is semantic: fold sequentially.
            let mut h = mix(0xA2, occ_color(colors, *id, mark));
            for arg in args {
                h = mix(h, ilin_hash(arg, colors, mark).0);
            }
            h
        }
        IAtom::Mul(a, b) => binop_hash(0xA3, a, b, colors, mark),
        IAtom::Div(a, b) => binop_hash(0xA4, a, b, colors, mark),
        IAtom::Mod(a, b) => binop_hash(0xA5, a, b, colors, mark),
    }
}

fn binop_hash(tag: u64, a: &ILin, b: &ILin, colors: &[u64], mark: usize) -> u64 {
    mix(
        mix(tag, ilin_hash(a, colors, mark).0),
        ilin_hash(b, colors, mark).0,
    )
}

/// Hash one literal: `=`/`≠` take the smaller polarity hash (the same
/// sign normalization the final rendering applies), `≤` keeps its sign.
fn ilit_hash(l: &ILit, colors: &[u64], mark: usize) -> u64 {
    let (pos, neg) = ilin_hash(&l.expr, colors, mark);
    let e = if l.rel == 2 { pos } else { pos.min(neg) };
    mix(u64::from(l.rel), e)
}

/// Hash a clause: sorted fold of its literal hashes (literal order is not
/// semantic).
fn iclause_hash(c: &[ILit], colors: &[u64], mark: usize) -> u64 {
    let mut hs: Vec<u64> = c.iter().map(|l| ilit_hash(l, colors, mark)).collect();
    hs.sort_unstable();
    hs.into_iter().fold(0xC1A0_5E00, mix)
}

fn count_distinct(colors: &[u64]) -> usize {
    let mut cs: Vec<u64> = colors.to_vec();
    cs.sort_unstable();
    cs.dedup();
    cs.len()
}

/// Color refinement to a fixpoint: each round, a name's new color is a
/// hash of its old color and the *set* of clause-context hashes computed
/// with that name's occurrences marked. Stops when a round fails to split
/// another color class. A set (not multiset) of contexts keeps the
/// refinement insensitive to clauses that duplicate each other only after
/// polarity normalization.
fn refine(q: &IQuery, mut colors: Vec<u64>) -> Vec<u64> {
    let mut distinct = count_distinct(&colors);
    loop {
        let mut next = Vec::with_capacity(colors.len());
        for id in 0..colors.len() {
            let mut ctxs: Vec<u64> = q.incidence[id]
                .iter()
                .map(|&ci| iclause_hash(&q.clauses[ci], &colors, id))
                .collect();
            ctxs.sort_unstable();
            ctxs.dedup();
            next.push(ctxs.into_iter().fold(mix(0x516, colors[id]), mix));
        }
        let d = count_distinct(&next);
        // Discrete coloring: nothing left to split, skip the fixpoint
        // confirmation round.
        if d == next.len() {
            return next;
        }
        if d == distinct {
            return colors;
        }
        distinct = d;
        colors = next;
    }
}

/// Dense per-kind ranks (indexed by interned id) from final colors, in
/// color order; names sharing a color are ordered by original name (only
/// reachable when the search budget is exhausted).
fn ranks_vec(q: &IQuery, colors: &[u64]) -> Vec<usize> {
    let nsyms = q.sym_names.len();
    let mut ranks = vec![0usize; colors.len()];
    let mut order: Vec<usize> = (0..nsyms).collect();
    order.sort_by(|&a, &b| (colors[a], &q.sym_names[a]).cmp(&(colors[b], &q.sym_names[b])));
    for (k, id) in order.into_iter().enumerate() {
        ranks[id] = k;
    }
    let mut order: Vec<usize> = (nsyms..colors.len()).collect();
    order.sort_by(|&a, &b| {
        (colors[a], &q.fn_names[a - nsyms]).cmp(&(colors[b], &q.fn_names[b - nsyms]))
    });
    for (k, id) in order.into_iter().enumerate() {
        ranks[id] = k;
    }
    ranks
}

fn iatom_str(a: &IAtom, ranks: &[usize], out: &mut String) {
    match a {
        IAtom::Sym(id) => {
            out.push('s');
            out.push_str(itoa(ranks[*id]).as_str());
        }
        IAtom::App(id, args) => {
            out.push('f');
            out.push_str(itoa(ranks[*id]).as_str());
            out.push('(');
            for (k, arg) in args.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                ilin_str(arg, false, ranks, out);
            }
            out.push(')');
        }
        IAtom::Mul(a, b) => ibinop_str('*', a, b, ranks, out),
        IAtom::Div(a, b) => ibinop_str('/', a, b, ranks, out),
        IAtom::Mod(a, b) => ibinop_str('%', a, b, ranks, out),
    }
}

fn itoa(v: usize) -> String {
    v.to_string()
}

fn ibinop_str(op: char, a: &ILin, b: &ILin, ranks: &[usize], out: &mut String) {
    out.push(op);
    out.push('(');
    ilin_str(a, false, ranks, out);
    out.push(',');
    ilin_str(b, false, ranks, out);
    out.push(')');
}

/// Render a linear combination with terms ordered by their rendered
/// atoms — an order independent of the original names once the ranks are
/// canonical. `negate` flips every sign.
fn ilin_str(e: &ILin, negate: bool, ranks: &[usize], out: &mut String) {
    let mut parts: Vec<(String, i128)> = e
        .terms
        .iter()
        .map(|(a, c)| {
            let mut s = String::new();
            iatom_str(a, ranks, &mut s);
            (s, if negate { -c } else { *c })
        })
        .collect();
    parts.sort();
    for (k, (atom, coeff)) in parts.iter().enumerate() {
        if k > 0 {
            out.push('+');
        }
        out.push_str(&coeff.to_string());
        out.push('*');
        out.push_str(atom);
    }
    let c = if negate { -e.constant } else { e.constant };
    if e.terms.is_empty() || c != 0 {
        out.push('+');
        out.push_str(&c.to_string());
    }
}

/// Render one literal. The `=`/`≠` polarity is fixed by the smaller
/// polarity hash under the final colors — invariant, deterministic, and
/// computed without rendering the discarded polarity.
fn ilit_str(l: &ILit, colors: &[u64], ranks: &[usize], out: &mut String) {
    out.push(match l.rel {
        0 => '=',
        1 => '!',
        _ => '<',
    });
    let negate = if l.rel == 2 {
        false
    } else {
        let (pos, neg) = ilin_hash(&l.expr, colors, usize::MAX);
        neg < pos
    };
    ilin_str(&l.expr, negate, ranks, out);
}

/// Render the clause set under final colors: literals sorted and
/// deduplicated within each clause, clauses sorted and deduplicated
/// across the set.
fn render_key(q: &IQuery, colors: &[u64]) -> String {
    let ranks = ranks_vec(q, colors);
    let mut rendered: Vec<String> = q
        .clauses
        .iter()
        .map(|clause| {
            let mut lits: Vec<String> = clause
                .iter()
                .map(|l| {
                    let mut s = String::new();
                    ilit_str(l, colors, &ranks, &mut s);
                    s
                })
                .collect();
            lits.sort();
            lits.dedup();
            lits.join("|")
        })
        .collect();
    rendered.sort();
    rendered.dedup();
    rendered.join(";")
}

/// Signature of a finished coloring: the sorted clause hashes computed
/// under it (no occurrence marked). A pure function of structure and
/// colors, so it is renaming-invariant, and far cheaper than rendering
/// the clause set as a string.
fn leaf_sig(q: &IQuery, colors: &[u64]) -> Vec<u64> {
    let mut hs: Vec<u64> = q
        .clauses
        .iter()
        .map(|c| iclause_hash(c, colors, usize::MAX))
        .collect();
    hs.sort_unstable();
    hs
}

/// Individualization–refinement search: refine, and while a color class
/// still holds several names (a symmetry the structure alone cannot
/// break), individualize each member in turn and recurse. Finished
/// colorings accumulate in `leaves`. `budget` bounds the branches
/// explored; once exhausted, remaining ties break by original name —
/// still deterministic and sound, merely no longer renaming-invariant,
/// and reachable only on queries with very large automorphism groups.
fn search_leaves(q: &IQuery, colors: Vec<u64>, budget: &mut usize, leaves: &mut Vec<Vec<u64>>) {
    let colors = refine(q, colors);
    let mut cells: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (id, c) in colors.iter().enumerate() {
        cells.entry(*c).or_default().push(id);
    }
    if let Some(cell) = cells.values().find(|v| v.len() > 1) {
        if *budget > 0 {
            for &id in cell {
                if *budget == 0 {
                    break;
                }
                *budget -= 1;
                let mut c2 = colors.clone();
                c2[id] = mix(colors[id], 0x1D1D);
                search_leaves(q, c2, budget, leaves);
            }
            // `*budget > 0` guaranteed at least one branch above.
            return;
        }
    }
    leaves.push(colors);
}

/// Minimal key over the explored leaves. The winner is chosen by the
/// smallest leaf [signature](leaf_sig) — an invariant of the coloring —
/// and only the winner is rendered to a string. Signature-tied leaves
/// are automorphic images with identical renderings (up to the same
/// astronomically-unlikely hash coincidences the refinement colors
/// already rely on), so the first one stands for all of them.
fn min_key(q: &IQuery, colors: Vec<u64>, budget: &mut usize) -> String {
    let mut leaves = Vec::new();
    search_leaves(q, colors, budget, &mut leaves);
    let mut best: Option<(Vec<u64>, &Vec<u64>)> = None;
    for leaf in &leaves {
        let sig = leaf_sig(q, leaf);
        match &best {
            Some((b, _)) if *b <= sig => {}
            _ => best = Some((sig, leaf)),
        }
    }
    let (_, winner) = best.expect("search explores at least one leaf");
    render_key(q, winner)
}

// --- Interning -------------------------------------------------------

#[derive(Default)]
struct Interner {
    sym_ids: HashMap<String, usize>,
    fn_ids: HashMap<String, usize>,
}

fn collect_names_lin(e: &CanonLin, syms: &mut Vec<String>, fns: &mut Vec<String>) {
    for (a, _) in &e.terms {
        match a {
            CanonAtom::Sym(s) => syms.push(s.clone()),
            CanonAtom::App(f, args) => {
                fns.push(f.clone());
                for arg in args {
                    collect_names_lin(arg, syms, fns);
                }
            }
            CanonAtom::Mul(a, b) | CanonAtom::Div(a, b) | CanonAtom::Mod(a, b) => {
                collect_names_lin(a, syms, fns);
                collect_names_lin(b, syms, fns);
            }
        }
    }
}

fn intern_lin(e: &CanonLin, it: &Interner, nsyms: usize) -> ILin {
    ILin {
        terms: e
            .terms
            .iter()
            .map(|(a, c)| {
                let ia = match a {
                    CanonAtom::Sym(s) => IAtom::Sym(it.sym_ids[s]),
                    CanonAtom::App(f, args) => IAtom::App(
                        nsyms + it.fn_ids[f],
                        args.iter().map(|x| intern_lin(x, it, nsyms)).collect(),
                    ),
                    CanonAtom::Mul(a, b) => IAtom::Mul(
                        Box::new(intern_lin(a, it, nsyms)),
                        Box::new(intern_lin(b, it, nsyms)),
                    ),
                    CanonAtom::Div(a, b) => IAtom::Div(
                        Box::new(intern_lin(a, it, nsyms)),
                        Box::new(intern_lin(b, it, nsyms)),
                    ),
                    CanonAtom::Mod(a, b) => IAtom::Mod(
                        Box::new(intern_lin(a, it, nsyms)),
                        Box::new(intern_lin(b, it, nsyms)),
                    ),
                };
                (ia, *c)
            })
            .collect(),
        constant: e.constant,
    }
}

fn ilin_names(e: &ILin, out: &mut Vec<usize>) {
    for (a, _) in &e.terms {
        match a {
            IAtom::Sym(id) => out.push(*id),
            IAtom::App(id, args) => {
                out.push(*id);
                for arg in args {
                    ilin_names(arg, out);
                }
            }
            IAtom::Mul(a, b) | IAtom::Div(a, b) | IAtom::Mod(a, b) => {
                ilin_names(a, out);
                ilin_names(b, out);
            }
        }
    }
}

/// Compute the canonical, renaming-invariant key of a clause stack.
///
/// The key is a pure function of the clause *set* (order- and
/// duplicate-insensitive) modulo bijective renaming of symbols and
/// function names. Two stacks with the same key are equisatisfiable.
pub fn canonical_query_key<'a>(
    clauses: impl Iterator<Item = &'a Clause>,
    table: &AtomTable,
) -> String {
    // Structural form with original names; exact duplicates (same
    // structure, same names) drop here so refinement never sees them.
    let mut cs: Vec<Vec<CanonLit>> = clauses
        .map(|c| {
            let mut lits: Vec<CanonLit> = c
                .lits
                .iter()
                .map(|l| canon_lit(l.rel, &l.expr, table))
                .collect();
            lits.sort();
            lits.dedup();
            lits
        })
        .collect();
    cs.sort();
    cs.dedup();
    // Intern names (deterministic id order; ids never leak into the key).
    let (mut syms, mut fns) = (Vec::new(), Vec::new());
    for clause in &cs {
        for lit in clause {
            collect_names_lin(&lit.expr, &mut syms, &mut fns);
        }
    }
    syms.sort();
    syms.dedup();
    fns.sort();
    fns.dedup();
    let mut it = Interner::default();
    for (i, s) in syms.iter().enumerate() {
        it.sym_ids.insert(s.clone(), i);
    }
    for (i, f) in fns.iter().enumerate() {
        it.fn_ids.insert(f.clone(), i);
    }
    let nsyms = syms.len();
    let n = nsyms + fns.len();
    let iclauses: Vec<Vec<ILit>> = cs
        .iter()
        .map(|clause| {
            clause
                .iter()
                .map(|l| ILit {
                    rel: l.rel,
                    expr: intern_lin(&l.expr, &it, nsyms),
                })
                .collect()
        })
        .collect();
    let mut incidence: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, clause) in iclauses.iter().enumerate() {
        let mut ids = Vec::new();
        for lit in clause {
            ilin_names(&lit.expr, &mut ids);
        }
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            incidence[id].push(ci);
        }
    }
    let q = IQuery {
        clauses: iclauses,
        incidence,
        sym_names: syms,
        fn_names: fns,
    };
    // Initial colors by kind only; refinement does the rest.
    let mut colors = vec![0x57A_u64; nsyms];
    colors.resize(n, 0xF17_u64);
    let mut budget = 64usize;
    min_key(&q, colors, &mut budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::StopReason;
    use crate::formula::Formula;
    use crate::term::Term;

    fn cnf_of(f: Formula) -> Vec<Clause> {
        f.to_cnf()
    }

    fn key_of(clauses: &[Clause], table: &AtomTable) -> String {
        canonical_query_key(clauses.iter(), table)
    }

    #[test]
    fn renaming_invariance() {
        // i ≠ i' ∧ c(i) = c(i')  keyed identically under j/j'/d renaming.
        let mut t1 = AtomTable::new();
        let mut cs1 = cnf_of(Formula::term_ne(&Term::sym("i"), &Term::sym("i'"), &mut t1).unwrap());
        cs1.extend(cnf_of(
            Formula::term_eq(
                &Term::app("c", vec![Term::sym("i")]),
                &Term::app("c", vec![Term::sym("i'")]),
                &mut t1,
            )
            .unwrap(),
        ));

        let mut t2 = AtomTable::new();
        // Intern an unrelated symbol first so the raw AtomIds differ too.
        t2.sym("noise");
        let mut cs2 = cnf_of(Formula::term_ne(&Term::sym("j"), &Term::sym("j'"), &mut t2).unwrap());
        cs2.extend(cnf_of(
            Formula::term_eq(
                &Term::app("d", vec![Term::sym("j")]),
                &Term::app("d", vec![Term::sym("j'")]),
                &mut t2,
            )
            .unwrap(),
        ));

        assert_eq!(key_of(&cs1, &t1), key_of(&cs2, &t2));
    }

    #[test]
    fn distinct_queries_have_distinct_keys() {
        let mut t = AtomTable::new();
        let eq = cnf_of(Formula::term_eq(&Term::sym("a"), &Term::sym("b"), &mut t).unwrap());
        let ne = cnf_of(Formula::term_ne(&Term::sym("a"), &Term::sym("b"), &mut t).unwrap());
        assert_ne!(key_of(&eq, &t), key_of(&ne, &t));
        // Different offset → different key.
        let shifted = cnf_of(
            Formula::term_eq(&Term::sym("a"), &(Term::sym("b") + Term::int(1)), &mut t).unwrap(),
        );
        assert_ne!(key_of(&eq, &t), key_of(&shifted, &t));
    }

    #[test]
    fn eq_sign_normalization() {
        // a = b normalizes to a - b = 0; b = a to b - a = 0. Same key.
        let mut t = AtomTable::new();
        let ab = cnf_of(Formula::term_eq(&Term::sym("a"), &Term::sym("b"), &mut t).unwrap());
        let ba = cnf_of(Formula::term_eq(&Term::sym("b"), &Term::sym("a"), &mut t).unwrap());
        assert_eq!(key_of(&ab, &t), key_of(&ba, &t));
    }

    #[test]
    fn le_is_not_sign_normalized() {
        // In isolation, a ≤ b and b ≤ a are each other's image under the
        // renaming a↔b, so an invariant key collapses them (sound: the
        // verdict is renaming-invariant too)...
        let le = |x: &str, y: &str, t: &mut AtomTable| {
            cnf_of(Formula::Lit(crate::formula::Literal::le(
                crate::linexpr::normalize(&Term::sym(x), t).unwrap(),
                crate::linexpr::normalize(&Term::sym(y), t).unwrap(),
            )))
        };
        let mut t = AtomTable::new();
        assert_eq!(
            key_of(&le("a", "b", &mut t), &t),
            key_of(&le("b", "a", &mut t), &t)
        );
        // ...but the direction of ≤ is never lost *relative to the rest
        // of the query*: once `a` is pinned by another assertion, the two
        // orientations are genuinely different constraints.
        let pin = cnf_of(
            Formula::term_eq(&Term::sym("a"), &(Term::sym("c") + Term::sym("c")), &mut t).unwrap(),
        );
        let mut ab = le("a", "b", &mut t);
        ab.extend(pin.clone());
        let mut ba = le("b", "a", &mut t);
        ba.extend(pin);
        assert_ne!(key_of(&ab, &t), key_of(&ba, &t));
    }

    #[test]
    fn clause_order_and_duplicates_are_irrelevant() {
        let mut t = AtomTable::new();
        let f1 = cnf_of(Formula::term_ne(&Term::sym("x"), &Term::sym("y"), &mut t).unwrap());
        let f2 = cnf_of(Formula::term_eq(&Term::sym("z"), &Term::int(0), &mut t).unwrap());
        let mut ab: Vec<Clause> = f1.iter().chain(&f2).cloned().collect();
        let ba: Vec<Clause> = f2.iter().chain(&f1).cloned().collect();
        assert_eq!(key_of(&ab, &t), key_of(&ba, &t));
        // Duplicating a clause does not change the key (set semantics).
        ab.extend(f1.clone());
        assert_eq!(key_of(&ab, &t), key_of(&ba, &t));
    }

    #[test]
    fn cache_round_trip_and_counters() {
        let c = ProofCache::new();
        assert!(c.is_empty());
        assert_eq!(c.lookup("k1"), None);
        assert_eq!(c.misses(), 1);
        assert!(c.insert("k1".into(), SatResult::Unsat));
        assert!(c.insert("k2".into(), SatResult::Sat));
        assert_eq!(c.inserts(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("k1"), Some(SatResult::Unsat));
        assert_eq!(c.lookup("k2"), Some(SatResult::Sat));
        assert_eq!(c.hits(), 2);
        // Clones share the same map and counters.
        let c2 = c.clone();
        assert_eq!(c2.lookup("k1"), Some(SatResult::Unsat));
        assert_eq!(c.hits(), 3);
        c2.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn overlay_reads_parent_but_writes_privately() {
        let base = ProofCache::new();
        base.insert("shared".into(), SatResult::Unsat);
        let ov1 = base.overlay();
        let ov2 = base.overlay();
        // Parent entries are visible through the overlay.
        assert_eq!(ov1.lookup("shared"), Some(SatResult::Unsat));
        // Overlay inserts are invisible to the parent and to siblings —
        // this is what makes parallel workers schedule-independent.
        ov1.insert("private".into(), SatResult::Sat);
        assert_eq!(ov1.lookup("private"), Some(SatResult::Sat));
        assert_eq!(base.lookup("private"), None);
        assert_eq!(ov2.lookup("private"), None);
        // Absorb publishes them.
        base.absorb(&ov1);
        assert_eq!(base.lookup("private"), Some(SatResult::Sat));
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn overlays_chain_through_to_the_base() {
        // A service gives each request an overlay of the shared base
        // cache; region workers overlay the request layer again. Lookups
        // from the deepest layer must still see base entries.
        let base = ProofCache::new();
        base.insert("warm".into(), SatResult::Unsat);
        let request = base.overlay();
        request.insert("req".into(), SatResult::Sat);
        let worker = request.overlay();
        assert_eq!(worker.depth(), 2);
        assert_eq!(worker.lookup("warm"), Some(SatResult::Unsat));
        assert_eq!(worker.lookup("req"), Some(SatResult::Sat));
        // Nearer layers shadow farther ones.
        worker.insert("req".into(), SatResult::Unsat);
        assert_eq!(worker.lookup("req"), Some(SatResult::Unsat));
        assert_eq!(request.lookup("req"), Some(SatResult::Sat));
        // Rollback is simply not absorbing: dropping the request layer
        // leaves the base untouched.
        drop(worker);
        drop(request);
        assert_eq!(base.len(), 1);
        assert_eq!(base.lookup("req"), None);
        // Absorb still publishes a deep overlay's own entries only.
        let request = base.overlay();
        let worker = request.overlay();
        worker.insert("deep".into(), SatResult::Sat);
        request.absorb(&worker);
        assert_eq!(request.lookup("deep"), Some(SatResult::Sat));
        assert_eq!(base.lookup("deep"), None);
        base.absorb(&request);
        assert_eq!(base.lookup("deep"), Some(SatResult::Sat));
        assert_eq!(base.lookup("warm"), Some(SatResult::Unsat));
    }

    #[test]
    fn unknown_is_never_stored() {
        let c = ProofCache::new();
        assert!(!c.insert("k".into(), SatResult::Unknown(StopReason::Budget)));
        assert!(!c.insert("k".into(), SatResult::Unknown(StopReason::Deadline)));
        assert!(c.is_empty());
        assert_eq!(c.inserts(), 0);
        assert_eq!(c.lookup("k"), None);
    }

    #[test]
    fn opaque_atoms_key_structurally() {
        // a*b interns as an opaque atom; its structure must appear in the
        // key so x = a*b and x = a+b differ.
        let mut t = AtomTable::new();
        let mul = cnf_of(
            Formula::term_eq(&Term::sym("x"), &(Term::sym("a") * Term::sym("b")), &mut t).unwrap(),
        );
        let add = cnf_of(
            Formula::term_eq(&Term::sym("x"), &(Term::sym("a") + Term::sym("b")), &mut t).unwrap(),
        );
        assert_ne!(key_of(&mul, &t), key_of(&add, &t));
    }
}
