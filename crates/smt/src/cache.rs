//! Canonical-query proof caching.
//!
//! FormAD's analyses issue many *structurally similar* queries: the same
//! disjointness question reappears across symmetric pairs, across arrays,
//! across regions, across retries of the escalation ladder, and across
//! whole benchmark suites that re-analyze the same kernels. A query is a
//! CNF clause stack over interned atoms; two queries that differ only in a
//! bijective renaming of free symbols and uninterpreted function names are
//! equisatisfiable, so one prover verdict serves them all.
//!
//! [`canonical_query_key`] computes a deterministic renaming-invariant key
//! for a clause stack: every literal is expanded structurally (atom ids
//! resolved through the [`AtomTable`], so keys are comparable *across*
//! solvers with independently grown tables), signs of `=`/`≠` literals are
//! normalized, literals and clauses are sorted, duplicates dropped, and
//! symbols/function names are renamed `s0, s1, …` / `f0, f1, …` in first
//! occurrence order over the sorted form.
//!
//! [`ProofCache`] is a sharded concurrent map from canonical keys to
//! *definite* verdicts. `Unknown` results are never stored and never
//! served: an `Unknown` is a property of one run's budget/deadline, not of
//! the query, and caching it would let one starved attempt poison every
//! later, better-funded attempt. Cache invalidation is by construction —
//! the key is a pure function of the complete assertion stack, so there is
//! no aliasing between different models and nothing to invalidate.
//!
//! Soundness: the full canonical string is the map key (no hashing on the
//! lookup path), so a collision cannot serve a verdict for a different
//! query; and a served `Unsat` is backed by the derivation of the run that
//! inserted it, which is valid for every query with the same canonical
//! form.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::formula::{Clause, Rel};
use crate::linexpr::{AtomKey, AtomTable, LinExpr};
use crate::solver::SatResult;

/// Number of lock shards; keys are distributed by a cheap FNV hash so
/// concurrent workers rarely contend on the same shard.
const SHARDS: usize = 16;

#[derive(Debug, Default)]
struct CacheInner {
    shards: [Mutex<HashMap<String, bool>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl CacheInner {
    fn shard_index(key: &str) -> usize {
        // FNV-1a over the key bytes; only shard selection, never identity.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % SHARDS as u64) as usize
    }

    fn get(&self, key: &str) -> Option<bool> {
        self.shards[Self::shard_index(key)]
            .lock()
            .map_or(None, |m| m.get(key).copied())
    }
}

/// Concurrent, sharded map from canonical query keys to definite
/// `Sat`/`Unsat` verdicts. Cloning is cheap (shared handle); clones share
/// one underlying map, which is how a cache is shared across arrays,
/// regions, and whole kernel suites.
///
/// For deterministic parallel analysis, a cache can be layered: an
/// [`overlay`](ProofCache::overlay) reads through to its parent but writes
/// only to its own private map. Workers each get an overlay, so a worker's
/// lookups observe exactly (entries published before the fan-out) ∪ (its
/// own inserts) — never a sibling's in-flight inserts — making hit/miss
/// behavior independent of thread scheduling. After the workers join, the
/// coordinator [`absorb`](ProofCache::absorb)s the overlays in a fixed
/// order to publish their verdicts.
#[derive(Debug, Clone, Default)]
pub struct ProofCache {
    inner: Arc<CacheInner>,
    parent: Option<Arc<CacheInner>>,
}

impl ProofCache {
    /// Create an empty cache.
    pub fn new() -> ProofCache {
        ProofCache::default()
    }

    /// A private write layer over this cache: lookups read this cache's
    /// current entries (read-only), inserts stay in the overlay until
    /// [`absorb`](ProofCache::absorb)ed. One level deep: overlaying an
    /// overlay reads through to the overlay's own entries only.
    pub fn overlay(&self) -> ProofCache {
        ProofCache {
            inner: Arc::new(CacheInner::default()),
            parent: Some(Arc::clone(&self.inner)),
        }
    }

    /// Publish an overlay's privately-inserted verdicts into this cache.
    /// Idempotent in effect: a canonical key has exactly one definite
    /// verdict, so duplicate publishes are harmless.
    pub fn absorb(&self, overlay: &ProofCache) {
        for (idx, shard) in overlay.inner.shards.iter().enumerate() {
            let Ok(src) = shard.lock() else { continue };
            if src.is_empty() {
                continue;
            }
            if let Ok(mut dst) = self.inner.shards[idx].lock() {
                for (k, v) in src.iter() {
                    dst.insert(k.clone(), *v);
                }
            }
        }
    }

    /// Look up a verdict (own entries, then the parent layer, if any).
    /// Counts a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<SatResult> {
        let found = self
            .inner
            .get(key)
            .or_else(|| self.parent.as_ref().and_then(|p| p.get(key)));
        match found {
            Some(sat) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(if sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                })
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a verdict. `Unknown` results are rejected (returns `false`):
    /// the cache only ever holds definite answers.
    pub fn insert(&self, key: String, result: SatResult) -> bool {
        let sat = match result {
            SatResult::Sat => true,
            SatResult::Unsat => false,
            SatResult::Unknown(_) => return false,
        };
        let idx = CacheInner::shard_index(&key);
        if let Ok(mut m) = self.inner.shards[idx].lock() {
            m.insert(key, sat);
        }
        self.inner.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().map_or(0, |m| m.len()))
            .sum()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached verdict (counters are kept).
    pub fn clear(&self) {
        for s in &self.inner.shards {
            if let Ok(mut m) = s.lock() {
                m.clear();
            }
        }
    }

    /// Lifetime hit count across every clone of this cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count across every clone of this cache.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Lifetime insert count across every clone of this cache.
    pub fn inserts(&self) -> u64 {
        self.inner.inserts.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Canonicalization.
// ---------------------------------------------------------------------

/// Structural atom representation with original names, used both as the
/// deterministic sort key and as the tree the renamer walks.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum CanonAtom {
    Sym(String),
    App(String, Vec<CanonLin>),
    Mul(Box<CanonLin>, Box<CanonLin>),
    Div(Box<CanonLin>, Box<CanonLin>),
    Mod(Box<CanonLin>, Box<CanonLin>),
}

/// A linear expression with structurally-expanded atoms, terms sorted by
/// atom structure (not by table-local interning order).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CanonLin {
    terms: Vec<(CanonAtom, i128)>,
    constant: i128,
}

fn canon_atom(key: &AtomKey, table: &AtomTable) -> CanonAtom {
    match key {
        AtomKey::Sym(s) => CanonAtom::Sym(s.clone()),
        AtomKey::App(f, args) => CanonAtom::App(
            f.clone(),
            args.iter().map(|a| canon_lin_raw(a, table)).collect(),
        ),
        AtomKey::MulOpaque(a, b) => CanonAtom::Mul(
            Box::new(canon_lin_raw(a, table)),
            Box::new(canon_lin_raw(b, table)),
        ),
        AtomKey::DivOpaque(a, b) => CanonAtom::Div(
            Box::new(canon_lin_raw(a, table)),
            Box::new(canon_lin_raw(b, table)),
        ),
        AtomKey::ModOpaque(a, b) => CanonAtom::Mod(
            Box::new(canon_lin_raw(a, table)),
            Box::new(canon_lin_raw(b, table)),
        ),
    }
}

fn canon_lin_raw(e: &LinExpr, table: &AtomTable) -> CanonLin {
    let mut terms: Vec<(CanonAtom, i128)> = e
        .terms
        .iter()
        .map(|(a, c)| (canon_atom(table.key(*a), table), *c))
        .collect();
    terms.sort();
    CanonLin {
        terms,
        constant: e.constant,
    }
}

/// A canonical literal: relation + sign-normalized expression. For `=` and
/// `≠`, `e ⋈ 0` and `-e ⋈ 0` are the same constraint, so the sign is fixed
/// by making the leading term's coefficient (or the constant, for ground
/// literals) non-negative. `≤` is not symmetric and keeps its sign.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CanonLit {
    rel: u8,
    expr: CanonLin,
}

fn canon_lit(rel: Rel, expr: &LinExpr, table: &AtomTable) -> CanonLit {
    let mut e = canon_lin_raw(expr, table);
    if matches!(rel, Rel::Eq | Rel::Ne) {
        let leading = e.terms.first().map(|(_, c)| *c).unwrap_or(e.constant);
        if leading < 0 {
            for (_, c) in &mut e.terms {
                *c = -*c;
            }
            e.constant = -e.constant;
        }
    }
    CanonLit {
        rel: match rel {
            Rel::Eq => 0,
            Rel::Ne => 1,
            Rel::Le => 2,
        },
        expr: e,
    }
}

/// Renamer assigning dense names to symbols and function names in first
/// occurrence order over the canonical (sorted) structure.
#[derive(Default)]
struct Namer {
    syms: HashMap<String, usize>,
    fns: HashMap<String, usize>,
}

impl Namer {
    fn sym(&mut self, name: &str) -> usize {
        let next = self.syms.len();
        *self.syms.entry(name.to_string()).or_insert(next)
    }
    fn func(&mut self, name: &str) -> usize {
        let next = self.fns.len();
        *self.fns.entry(name.to_string()).or_insert(next)
    }
}

fn emit_atom(a: &CanonAtom, n: &mut Namer, out: &mut String) {
    match a {
        CanonAtom::Sym(s) => {
            out.push('s');
            out.push_str(&n.sym(s).to_string());
        }
        CanonAtom::App(f, args) => {
            out.push('f');
            out.push_str(&n.func(f).to_string());
            out.push('(');
            for (k, arg) in args.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                emit_lin(arg, n, out);
            }
            out.push(')');
        }
        CanonAtom::Mul(a, b) => emit_binop('*', a, b, n, out),
        CanonAtom::Div(a, b) => emit_binop('/', a, b, n, out),
        CanonAtom::Mod(a, b) => emit_binop('%', a, b, n, out),
    }
}

fn emit_binop(op: char, a: &CanonLin, b: &CanonLin, n: &mut Namer, out: &mut String) {
    out.push(op);
    out.push('(');
    emit_lin(a, n, out);
    out.push(',');
    emit_lin(b, n, out);
    out.push(')');
}

fn emit_lin(e: &CanonLin, n: &mut Namer, out: &mut String) {
    for (k, (atom, coeff)) in e.terms.iter().enumerate() {
        if k > 0 {
            out.push('+');
        }
        out.push_str(&coeff.to_string());
        out.push('*');
        emit_atom(atom, n, out);
    }
    if e.terms.is_empty() || e.constant != 0 {
        out.push('+');
        out.push_str(&e.constant.to_string());
    }
}

/// Compute the canonical, renaming-invariant key of a clause stack.
///
/// The key is a pure function of the clause *set* (order- and
/// duplicate-insensitive) modulo bijective renaming of symbols and
/// function names. Two stacks with the same key are equisatisfiable.
pub fn canonical_query_key<'a>(
    clauses: impl Iterator<Item = &'a Clause>,
    table: &AtomTable,
) -> String {
    // Canonical structural form with original names.
    let mut cs: Vec<Vec<CanonLit>> = clauses
        .map(|c| {
            let mut lits: Vec<CanonLit> = c
                .lits
                .iter()
                .map(|l| canon_lit(l.rel, &l.expr, table))
                .collect();
            lits.sort();
            lits.dedup();
            lits
        })
        .collect();
    cs.sort();
    cs.dedup();
    // Rename in first-occurrence order over the sorted form and emit.
    let mut n = Namer::default();
    let mut out = String::new();
    for (k, clause) in cs.iter().enumerate() {
        if k > 0 {
            out.push(';');
        }
        for (j, lit) in clause.iter().enumerate() {
            if j > 0 {
                out.push('|');
            }
            out.push(match lit.rel {
                0 => '=',
                1 => '!',
                _ => '<',
            });
            emit_lin(&lit.expr, &mut n, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::StopReason;
    use crate::formula::Formula;
    use crate::term::Term;

    fn cnf_of(f: Formula) -> Vec<Clause> {
        f.to_cnf()
    }

    fn key_of(clauses: &[Clause], table: &AtomTable) -> String {
        canonical_query_key(clauses.iter(), table)
    }

    #[test]
    fn renaming_invariance() {
        // i ≠ i' ∧ c(i) = c(i')  keyed identically under j/j'/d renaming.
        let mut t1 = AtomTable::new();
        let mut cs1 = cnf_of(Formula::term_ne(&Term::sym("i"), &Term::sym("i'"), &mut t1).unwrap());
        cs1.extend(cnf_of(
            Formula::term_eq(
                &Term::app("c", vec![Term::sym("i")]),
                &Term::app("c", vec![Term::sym("i'")]),
                &mut t1,
            )
            .unwrap(),
        ));

        let mut t2 = AtomTable::new();
        // Intern an unrelated symbol first so the raw AtomIds differ too.
        t2.sym("noise");
        let mut cs2 = cnf_of(Formula::term_ne(&Term::sym("j"), &Term::sym("j'"), &mut t2).unwrap());
        cs2.extend(cnf_of(
            Formula::term_eq(
                &Term::app("d", vec![Term::sym("j")]),
                &Term::app("d", vec![Term::sym("j'")]),
                &mut t2,
            )
            .unwrap(),
        ));

        assert_eq!(key_of(&cs1, &t1), key_of(&cs2, &t2));
    }

    #[test]
    fn distinct_queries_have_distinct_keys() {
        let mut t = AtomTable::new();
        let eq = cnf_of(Formula::term_eq(&Term::sym("a"), &Term::sym("b"), &mut t).unwrap());
        let ne = cnf_of(Formula::term_ne(&Term::sym("a"), &Term::sym("b"), &mut t).unwrap());
        assert_ne!(key_of(&eq, &t), key_of(&ne, &t));
        // Different offset → different key.
        let shifted = cnf_of(
            Formula::term_eq(&Term::sym("a"), &(Term::sym("b") + Term::int(1)), &mut t).unwrap(),
        );
        assert_ne!(key_of(&eq, &t), key_of(&shifted, &t));
    }

    #[test]
    fn eq_sign_normalization() {
        // a = b normalizes to a - b = 0; b = a to b - a = 0. Same key.
        let mut t = AtomTable::new();
        let ab = cnf_of(Formula::term_eq(&Term::sym("a"), &Term::sym("b"), &mut t).unwrap());
        let ba = cnf_of(Formula::term_eq(&Term::sym("b"), &Term::sym("a"), &mut t).unwrap());
        assert_eq!(key_of(&ab, &t), key_of(&ba, &t));
    }

    #[test]
    fn le_is_not_sign_normalized() {
        // a ≤ b and b ≤ a are different constraints.
        let mut t = AtomTable::new();
        let ab = cnf_of(Formula::Lit(crate::formula::Literal::le(
            crate::linexpr::normalize(&Term::sym("a"), &mut t).unwrap(),
            crate::linexpr::normalize(&Term::sym("b"), &mut t).unwrap(),
        )));
        let ba = cnf_of(Formula::Lit(crate::formula::Literal::le(
            crate::linexpr::normalize(&Term::sym("b"), &mut t).unwrap(),
            crate::linexpr::normalize(&Term::sym("a"), &mut t).unwrap(),
        )));
        assert_ne!(key_of(&ab, &t), key_of(&ba, &t));
    }

    #[test]
    fn clause_order_and_duplicates_are_irrelevant() {
        let mut t = AtomTable::new();
        let f1 = cnf_of(Formula::term_ne(&Term::sym("x"), &Term::sym("y"), &mut t).unwrap());
        let f2 = cnf_of(Formula::term_eq(&Term::sym("z"), &Term::int(0), &mut t).unwrap());
        let mut ab: Vec<Clause> = f1.iter().chain(&f2).cloned().collect();
        let ba: Vec<Clause> = f2.iter().chain(&f1).cloned().collect();
        assert_eq!(key_of(&ab, &t), key_of(&ba, &t));
        // Duplicating a clause does not change the key (set semantics).
        ab.extend(f1.clone());
        assert_eq!(key_of(&ab, &t), key_of(&ba, &t));
    }

    #[test]
    fn cache_round_trip_and_counters() {
        let c = ProofCache::new();
        assert!(c.is_empty());
        assert_eq!(c.lookup("k1"), None);
        assert_eq!(c.misses(), 1);
        assert!(c.insert("k1".into(), SatResult::Unsat));
        assert!(c.insert("k2".into(), SatResult::Sat));
        assert_eq!(c.inserts(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("k1"), Some(SatResult::Unsat));
        assert_eq!(c.lookup("k2"), Some(SatResult::Sat));
        assert_eq!(c.hits(), 2);
        // Clones share the same map and counters.
        let c2 = c.clone();
        assert_eq!(c2.lookup("k1"), Some(SatResult::Unsat));
        assert_eq!(c.hits(), 3);
        c2.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn overlay_reads_parent_but_writes_privately() {
        let base = ProofCache::new();
        base.insert("shared".into(), SatResult::Unsat);
        let ov1 = base.overlay();
        let ov2 = base.overlay();
        // Parent entries are visible through the overlay.
        assert_eq!(ov1.lookup("shared"), Some(SatResult::Unsat));
        // Overlay inserts are invisible to the parent and to siblings —
        // this is what makes parallel workers schedule-independent.
        ov1.insert("private".into(), SatResult::Sat);
        assert_eq!(ov1.lookup("private"), Some(SatResult::Sat));
        assert_eq!(base.lookup("private"), None);
        assert_eq!(ov2.lookup("private"), None);
        // Absorb publishes them.
        base.absorb(&ov1);
        assert_eq!(base.lookup("private"), Some(SatResult::Sat));
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn unknown_is_never_stored() {
        let c = ProofCache::new();
        assert!(!c.insert("k".into(), SatResult::Unknown(StopReason::Budget)));
        assert!(!c.insert("k".into(), SatResult::Unknown(StopReason::Deadline)));
        assert!(c.is_empty());
        assert_eq!(c.inserts(), 0);
        assert_eq!(c.lookup("k"), None);
    }

    #[test]
    fn opaque_atoms_key_structurally() {
        // a*b interns as an opaque atom; its structure must appear in the
        // key so x = a*b and x = a+b differ.
        let mut t = AtomTable::new();
        let mul = cnf_of(
            Formula::term_eq(&Term::sym("x"), &(Term::sym("a") * Term::sym("b")), &mut t).unwrap(),
        );
        let add = cnf_of(
            Formula::term_eq(&Term::sym("x"), &(Term::sym("a") + Term::sym("b")), &mut t).unwrap(),
        );
        assert_ne!(key_of(&mul, &t), key_of(&add, &t));
    }
}
