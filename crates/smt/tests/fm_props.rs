//! Property tests of the Fourier–Motzkin/Gauss feasibility core against
//! brute-force enumeration, plus regression cases for the congruence
//! (stride) reasoning the stencil proofs rely on.

use formad_smt::{feasible, AtomTable, Feasibility, FmBudget, LinExpr};
use proptest::prelude::*;

/// Build `c0 + Σ coeffs·x_k` over four symbols.
fn lin(table: &mut AtomTable, c0: i64, coeffs: &[i64; 4]) -> LinExpr {
    let names = ["a", "b", "c", "d"];
    let mut e = LinExpr::constant(c0 as i128);
    for (k, c) in coeffs.iter().enumerate() {
        if *c != 0 {
            let id = table.sym(names[k]);
            e = e.add_scaled(&LinExpr::atom(id), *c as i128);
        }
    }
    e
}

/// Brute-force integer feasibility over a box.
fn brute(eqs: &[(i64, [i64; 4])], ineqs: &[(i64, [i64; 4])], lo: i64, hi: i64) -> bool {
    for a in lo..=hi {
        for b in lo..=hi {
            for c in lo..=hi {
                for d in lo..=hi {
                    let v = [a, b, c, d];
                    let eval = |(c0, coeffs): &(i64, [i64; 4])| -> i64 {
                        c0 + coeffs.iter().zip(&v).map(|(x, y)| x * y).sum::<i64>()
                    };
                    if eqs.iter().all(|r| eval(r) == 0) && ineqs.iter().all(|r| eval(r) <= 0) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn coeffs() -> impl Strategy<Value = [i64; 4]> {
    [-2i64..=2, -2i64..=2, -2i64..=2, -2i64..=2]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Infeasible verdicts are sound: no integer point in any box can
    /// satisfy a system the core refutes. Feasible verdicts on these
    /// small systems must have a witness in a modest box.
    #[test]
    fn fm_agrees_with_brute_force(
        eqs in prop::collection::vec((-4i64..=4, coeffs()), 0..3),
        ineqs in prop::collection::vec((-4i64..=4, coeffs()), 0..4),
    ) {
        let mut table = AtomTable::new();
        let leqs: Vec<LinExpr> = eqs.iter().map(|(c, cs)| lin(&mut table, *c, cs)).collect();
        let lineqs: Vec<LinExpr> = ineqs.iter().map(|(c, cs)| lin(&mut table, *c, cs)).collect();
        let verdict = feasible(&leqs, &lineqs, &FmBudget::default());
        // Coefficients |c| ≤ 2, constants |c0| ≤ 4, ≤ 6 rows: a rational
        // solution (if one exists) can be scaled into [-40, 40]; use a
        // smaller sound box for the integer check.
        let has_model = brute(&eqs, &ineqs, -12, 12);
        match verdict {
            Feasibility::Infeasible => prop_assert!(!has_model,
                "core says infeasible but a model exists"),
            Feasibility::Feasible | Feasibility::Unknown(_) => {
                // Feasible may be integer-infeasible in rare cases (no
                // dark shadow); only the reverse direction is load-bearing.
            }
        }
    }

    /// If brute force finds a model, the core must not refute.
    #[test]
    fn models_never_refuted(
        eqs in prop::collection::vec((-3i64..=3, coeffs()), 0..2),
        ineqs in prop::collection::vec((-3i64..=3, coeffs()), 0..3),
    ) {
        if !brute(&eqs, &ineqs, -6, 6) {
            return Ok(());
        }
        let mut table = AtomTable::new();
        let leqs: Vec<LinExpr> = eqs.iter().map(|(c, cs)| lin(&mut table, *c, cs)).collect();
        let lineqs: Vec<LinExpr> = ineqs.iter().map(|(c, cs)| lin(&mut table, *c, cs)).collect();
        prop_assert_ne!(
            feasible(&leqs, &lineqs, &FmBudget::default()),
            Feasibility::Infeasible
        );
    }

    /// Congruence soundness: `x = s·k + r`, `x = s·k' + r'` with
    /// `r ≢ r' (mod s)` is infeasible for every stride 2..=5.
    #[test]
    fn stride_congruence(s in 2i128..=5, r1 in 0i128..=4, r2 in 0i128..=4) {
        prop_assume!(r1 % s != r2 % s);
        let mut table = AtomTable::new();
        let x = table.sym("x");
        let k = table.sym("k");
        let kp = table.sym("k'");
        // x - s·k - r1 = 0  and  x - s·k' - r2 = 0.
        let e1 = LinExpr { constant: -r1, terms: vec![(x, 1), (k, -s)] };
        let e2 = LinExpr { constant: -r2, terms: vec![(x, 1), (kp, -s)] };
        let mut r = feasible(&[e1.clone(), e2.clone()], &[], &FmBudget::default());
        // Normalize term order (terms must be sorted by atom id).
        if r.is_unknown() {
            r = feasible(&[e2, e1], &[], &FmBudget::default());
        }
        prop_assert_eq!(r, Feasibility::Infeasible);
    }
}

#[test]
fn push_pop_stack_depth_stress() {
    use formad_smt::{Formula, SatResult, Solver, Term};
    let mut s = Solver::new();
    let f = Formula::term_ne(&Term::sym("x"), &Term::sym("y"), &mut s.table).unwrap();
    s.assert(f);
    // Nested pushes accumulate: x = y + d for d = 1..k are mutually
    // inconsistent, so everything from the second frame on is Unsat.
    for depth in 1..=10 {
        s.push();
        let g = Formula::term_eq(
            &Term::sym("x"),
            &(Term::sym("y") + Term::int(depth)),
            &mut s.table,
        )
        .unwrap();
        s.assert(g);
        let expect = if depth == 1 {
            SatResult::Sat
        } else {
            SatResult::Unsat
        };
        assert_eq!(s.check(), expect, "depth {depth}");
    }
    for _ in 0..10 {
        s.pop();
    }
    assert_eq!(s.check(), SatResult::Sat);
    assert_eq!(s.num_clauses(), 1);
    // Independent frames: push/check/pop leaves no residue.
    for depth in 0..10 {
        s.push();
        let g = Formula::term_eq(
            &Term::sym("x"),
            &(Term::sym("y") + Term::int(depth)),
            &mut s.table,
        )
        .unwrap();
        s.assert(g);
        let expect = if depth == 0 {
            SatResult::Unsat // contradicts x ≠ y
        } else {
            SatResult::Sat
        };
        assert_eq!(s.check(), expect, "independent frame {depth}");
        s.pop();
    }
}

#[test]
fn budget_exhaustion_returns_unknown_not_wrong() {
    use formad_smt::{Formula, SatResult, Solver, SolverBudget, Term};
    let tiny = SolverBudget {
        max_lia_calls: 1,
        max_branches: 1,
        fm: FmBudget {
            max_rows: 2,
            max_coeff: 10,
        },
    };
    let mut s = Solver::with_budget(tiny);
    // A satisfiable system with several disequalities: with a starved
    // budget the solver may answer Unknown, but never Unsat.
    for k in 0..6 {
        let f = Formula::term_ne(
            &Term::sym(format!("x{k}")),
            &Term::sym(format!("x{}", k + 1)),
            &mut s.table,
        )
        .unwrap();
        s.assert(f);
    }
    assert_ne!(s.check(), SatResult::Unsat);
}
