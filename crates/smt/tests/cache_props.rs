//! Property tests for the canonical proof-cache key.
//!
//! The cache is sound only if [`canonical_query_key`] is a *semantic*
//! fingerprint of an assertion stack: invariant under bijective renaming
//! of symbols and function names, clause order, duplicate literals and
//! clauses — and different for queries that are not mere relabelings of
//! each other. These properties are exercised here over randomly
//! generated linear queries (the fragment the region analysis emits:
//! equalities/disequalities over loop counters, constants, and
//! uninterpreted index arrays).

use formad_smt::{canonical_query_key, AtomTable, Clause, Formula, Term};
use proptest::prelude::*;

const NSYM: usize = 4;
const NFUN: usize = 3;

/// Abstract atom: a symbol, or an uninterpreted application `f(s + c)`.
#[derive(Debug, Clone)]
enum AbsAtom {
    Sym(usize),
    App(usize, usize, i64),
}

/// Abstract linear side: `base + coef·atom`.
#[derive(Debug, Clone)]
struct AbsSide {
    base: i64,
    coef: i64,
    atom: AbsAtom,
}

/// Abstract literal: `lhs (=|≠) rhs`.
#[derive(Debug, Clone)]
struct AbsLit {
    ne: bool,
    lhs: AbsSide,
    rhs: AbsSide,
}

fn abs_atom() -> impl Strategy<Value = AbsAtom> {
    prop_oneof![
        (0..NSYM).prop_map(AbsAtom::Sym),
        (0..NFUN, 0..NSYM, -3i64..4).prop_map(|(f, s, c)| AbsAtom::App(f, s, c)),
    ]
}

fn abs_side() -> impl Strategy<Value = AbsSide> {
    (-5i64..6, -2i64..3, abs_atom()).prop_map(|(base, coef, atom)| AbsSide { base, coef, atom })
}

fn abs_lit() -> impl Strategy<Value = AbsLit> {
    (0u8..2, abs_side(), abs_side()).prop_map(|(ne, lhs, rhs)| AbsLit {
        ne: ne == 1,
        lhs,
        rhs,
    })
}

fn query() -> impl Strategy<Value = Vec<AbsLit>> {
    prop::collection::vec(abs_lit(), 1..8)
}

/// A random permutation of `0..n`, derived from a generated seed.
fn perm(n: usize) -> impl Strategy<Value = Vec<usize>> {
    (0u64..u64::MAX).prop_map(move |seed| {
        let mut v: Vec<usize> = (0..n).collect();
        shuffle(&mut v, seed | 1);
        v
    })
}

fn term_of(side: &AbsSide, syms: &dyn Fn(usize) -> String, funs: &dyn Fn(usize) -> String) -> Term {
    let atom = match &side.atom {
        AbsAtom::Sym(s) => Term::sym(syms(*s)),
        AbsAtom::App(f, s, c) => Term::app(funs(*f), vec![Term::sym(syms(*s)) + Term::int(*c)]),
    };
    Term::int(side.base) + Term::int(side.coef) * atom
}

/// Lower the abstract query to solver clauses under a concrete naming,
/// optionally interning `noise` unrelated symbols first so raw atom ids
/// differ between realizations.
fn realize(
    q: &[AbsLit],
    syms: &dyn Fn(usize) -> String,
    funs: &dyn Fn(usize) -> String,
    noise: usize,
) -> (Vec<Clause>, AtomTable) {
    let mut table = AtomTable::new();
    for k in 0..noise {
        table.sym(&format!("noise{k}"));
    }
    let mut cs = Vec::new();
    for lit in q {
        let a = term_of(&lit.lhs, syms, funs);
        let b = term_of(&lit.rhs, syms, funs);
        let f = if lit.ne {
            Formula::term_ne(&a, &b, &mut table)
        } else {
            Formula::term_eq(&a, &b, &mut table)
        }
        .expect("linear literal normalizes");
        cs.extend(f.to_cnf());
    }
    (cs, table)
}

fn key_of(cs: &[Clause], table: &AtomTable) -> String {
    canonical_query_key(cs.iter(), table)
}

/// Tiny deterministic shuffler (xorshift Fisher–Yates) so clause-order
/// properties need no extra dev-dependency.
fn shuffle<T>(v: &mut [T], mut seed: u64) {
    for i in (1..v.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        v.swap(i, (seed as usize) % (i + 1));
    }
}

proptest! {
    /// Bijective renaming of symbols and function names — plus unrelated
    /// symbols interned first, so raw `AtomId`s shift — leaves the key
    /// unchanged.
    #[test]
    fn key_invariant_under_renaming(
        q in query(),
        sp in perm(NSYM),
        fp in perm(NFUN),
        noise in 0usize..4,
    ) {
        let (cs1, t1) = realize(&q, &|s| format!("s{s}"), &|f| format!("f{f}"), 0);
        let (cs2, t2) = realize(
            &q,
            &|s| format!("renamed{}", sp[s]),
            &|f| format!("gfun{}", fp[f]),
            noise,
        );
        prop_assert_eq!(key_of(&cs1, &t1), key_of(&cs2, &t2));
    }

    /// Clause order and duplicate clauses do not change the key.
    #[test]
    fn key_invariant_under_permutation_and_duplicates(
        q in query(),
        seed in 0u64..u64::MAX,
        dup in 0usize..64,
    ) {
        let (cs, t) = realize(&q, &|s| format!("s{s}"), &|f| format!("f{f}"), 0);
        // Trivially-true literals lower to no clauses at all; duplication
        // needs at least one clause to copy.
        prop_assume!(!cs.is_empty());
        let reference = key_of(&cs, &t);

        let mut shuffled = cs.clone();
        shuffle(&mut shuffled, seed | 1);
        prop_assert_eq!(key_of(&shuffled, &t), reference.clone());

        let mut duplicated = cs.clone();
        duplicated.push(cs[dup % cs.len()].clone());
        shuffle(&mut duplicated, seed.rotate_left(17) | 1);
        prop_assert_eq!(key_of(&duplicated, &t), reference);
    }

    /// A genuinely new assertion — over a function name the query never
    /// mentions — always changes the key (no set-collapse under the
    /// canonical renaming).
    #[test]
    fn key_distinguishes_extra_assertion(q in query(), s in 0..NSYM) {
        let syms = |k: usize| format!("s{k}");
        let funs = |k: usize| format!("f{k}");
        let (cs, t) = realize(&q, &syms, &funs, 0);

        // `fresh(x_s) = 7`: a clause no renaming can map onto an existing
        // one (the query never mentions `fresh`), and one that cannot
        // degenerate to a trivial literal.
        let mut q2 = q.clone();
        q2.push(AbsLit {
            ne: false,
            lhs: AbsSide { base: 0, coef: 1, atom: AbsAtom::App(NFUN, s, 0) },
            rhs: AbsSide { base: 7, coef: 0, atom: AbsAtom::Sym(s) },
        });
        // Index NFUN is outside the generator's range: a fresh name.
        let funs2 = |k: usize| if k == NFUN { "fresh".to_string() } else { format!("f{k}") };
        let (cs2, t2) = realize(&q2, &syms, &funs2, 0);
        prop_assert_ne!(key_of(&cs, &t), key_of(&cs2, &t2));
    }

    /// Polarity is semantic: `a = b + k` and `a ≠ b + k` never share a
    /// key, and shifting the constant offset changes the key.
    #[test]
    fn key_distinguishes_polarity_and_offset(k in -10i64..10) {
        let mut t = AtomTable::new();
        let a = Term::sym("a");
        let bk = Term::sym("b") + Term::int(k);
        let eq = Formula::term_eq(&a, &bk, &mut t).unwrap().to_cnf();
        let ne = Formula::term_ne(&a, &bk, &mut t).unwrap().to_cnf();
        let shifted = Formula::term_eq(&a, &(Term::sym("b") + Term::int(k + 1)), &mut t)
            .unwrap()
            .to_cnf();
        prop_assert_ne!(key_of(&eq, &t), key_of(&ne, &t));
        prop_assert_ne!(key_of(&eq, &t), key_of(&shifted, &t));
    }

    /// Congruence queries over index arrays (the analysis' bread and
    /// butter): `c(i) = c(i')` keys identically under renaming to
    /// `d(j) = d(j')`, and differently from `c(i) = c(i' + 1)`.
    #[test]
    fn key_on_index_array_queries(off in 1i64..5) {
        let pair = |f: &str, x: &str, y: &str, shift: i64, t: &mut AtomTable| {
            let mut cs = Formula::term_ne(&Term::sym(x), &Term::sym(y), t).unwrap().to_cnf();
            cs.extend(
                Formula::term_eq(
                    &Term::app(f, vec![Term::sym(x)]),
                    &Term::app(f, vec![Term::sym(y) + Term::int(shift)]),
                    t,
                )
                .unwrap()
                .to_cnf(),
            );
            cs
        };
        let mut t1 = AtomTable::new();
        let c1 = pair("c", "i", "i'", 0, &mut t1);
        let mut t2 = AtomTable::new();
        t2.sym("padding");
        let c2 = pair("d", "j", "j'", 0, &mut t2);
        let mut t3 = AtomTable::new();
        let c3 = pair("c", "i", "i'", off, &mut t3);
        prop_assert_eq!(key_of(&c1, &t1), key_of(&c2, &t2));
        prop_assert_ne!(key_of(&c1, &t1), key_of(&c3, &t3));
    }
}
