//! Differential property tests of the two SMT search cores.
//!
//! The CDCL(T) engine is a pure accelerator over the legacy
//! enumerate-and-split core: on every input where both return a definite
//! verdict, the verdicts must be identical. Both are cross-validated
//! against brute-force model enumeration in the repo's one-directional
//! contract (an `Unsat` answer means no model exists anywhere; a model
//! found by enumeration forbids `Unsat`). Finally, the clauses the CDCL
//! core learns must be consequences of the assertions: re-asserting them
//! can never change a verdict.

use formad_smt::{
    brute, AtomTable, Clause, Formula, LinExpr, Literal, SatResult, SearchCore, Solver,
};
use proptest::prelude::*;

const SYMS: [&str; 3] = ["x", "y", "z"];

/// Spec of one literal: relation selector and `c0 + Σ coeffs·sym`.
type LitSpec = (u8, i64, [i64; 3]);
/// A formula is a conjunction of disjunctions of literal specs.
type FormulaSpec = Vec<Vec<LitSpec>>;

fn lin(table: &mut AtomTable, c0: i64, coeffs: &[i64; 3]) -> LinExpr {
    let mut e = LinExpr::constant(c0 as i128);
    for (k, c) in coeffs.iter().enumerate() {
        if *c != 0 {
            let id = table.sym(SYMS[k]);
            e = e.add_scaled(&LinExpr::atom(id), *c as i128);
        }
    }
    e
}

fn build_lit(table: &mut AtomTable, (rel, c0, coeffs): &LitSpec) -> Literal {
    let e = lin(table, *c0, coeffs);
    let zero = LinExpr::constant(0);
    match rel % 3 {
        0 => Literal::eq(e, zero),
        1 => Literal::ne(e, zero),
        _ => Literal::le(e, zero),
    }
}

fn build(table: &mut AtomTable, spec: &FormulaSpec) -> Vec<Formula> {
    spec.iter()
        .map(|clause| {
            Formula::or(
                clause
                    .iter()
                    .map(|l| Formula::Lit(build_lit(table, l)))
                    .collect(),
            )
        })
        .collect()
}

/// Solve `spec` from scratch under `core`; optionally re-assert `extra`
/// clauses (e.g. previously learned ones) before checking.
fn run_core(core: SearchCore, spec: &FormulaSpec, extra: &[Clause]) -> (SatResult, Vec<Clause>) {
    let mut s = Solver::new();
    s.set_search_core(core);
    for f in build(&mut s.table, spec) {
        s.assert(f);
    }
    for c in extra {
        s.assert(Formula::or(
            c.lits.iter().cloned().map(Formula::Lit).collect(),
        ));
    }
    let r = s.check();
    let learned = s.last_learned().to_vec();
    (r, learned)
}

fn lit_spec() -> impl Strategy<Value = LitSpec> {
    (0u8..3, -4i64..=4, [-2i64..=2, -2i64..=2, -2i64..=2])
}

fn formula_spec() -> impl Strategy<Value = FormulaSpec> {
    prop::collection::vec(prop::collection::vec(lit_spec(), 1..4), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wherever both cores are definite, they agree.
    #[test]
    fn cores_agree_when_definite(spec in formula_spec()) {
        let (cdcl, _) = run_core(SearchCore::Cdcl, &spec, &[]);
        let (legacy, _) = run_core(SearchCore::Legacy, &spec, &[]);
        match (&cdcl, &legacy) {
            (SatResult::Unknown(_), _) | (_, SatResult::Unknown(_)) => {}
            _ => prop_assert_eq!(cdcl, legacy, "search cores diverged on {:?}", spec),
        }
    }

    /// `Unsat` is sound for both cores: brute-force enumeration over a
    /// box covering these coefficients must not find a model. Conversely
    /// a found model forbids `Unsat`.
    #[test]
    fn unsat_is_sound_against_brute(spec in formula_spec()) {
        let mut table = AtomTable::new();
        let formulas = build(&mut table, &spec);
        let model = brute::find_model(&formulas, &table, -8, 8).expect("no opaque atoms");
        for core in [SearchCore::Cdcl, SearchCore::Legacy] {
            let (r, _) = run_core(core, &spec, &[]);
            if r == SatResult::Unsat {
                prop_assert!(
                    model.is_none(),
                    "{core:?} refuted a formula with model {model:?}: {spec:?}"
                );
            }
        }
    }

    /// Learned clauses are consequences: re-asserting everything the CDCL
    /// core learned changes no verdict — under either core.
    #[test]
    fn learned_clauses_are_sound(spec in formula_spec()) {
        let (first, learned) = run_core(SearchCore::Cdcl, &spec, &[]);
        let (again, _) = run_core(SearchCore::Cdcl, &spec, &learned);
        prop_assert_eq!(
            &first, &again,
            "re-asserting learned clauses flipped the cdcl verdict on {:?}", spec
        );
        let (legacy, _) = run_core(SearchCore::Legacy, &spec, &[]);
        let (legacy_aug, _) = run_core(SearchCore::Legacy, &spec, &learned);
        match (&legacy, &legacy_aug) {
            (SatResult::Unknown(_), _) | (_, SatResult::Unknown(_)) => {}
            _ => prop_assert_eq!(
                legacy, legacy_aug,
                "learned clauses flipped the legacy verdict on {:?}", spec
            ),
        }
    }
}

/// The seeded regression cases the proptests once minimized to — kept as
/// plain tests so they never rotate out of the corpus.
#[test]
fn pinned_core_agreement_cases() {
    let cases: Vec<FormulaSpec> = vec![
        // x = 0 ∧ x ≠ 0 (contradiction through presolve's fixed set).
        vec![vec![(0, 0, [1, 0, 0])], vec![(1, 0, [1, 0, 0])]],
        // (x ≤ 0 ∨ y ≤ 0) ∧ 1 - x ≤ 0 ∧ 1 - y ≤ 0 (forces a real split).
        vec![
            vec![(2, 0, [1, 0, 0]), (2, 0, [0, 1, 0])],
            vec![(2, 1, [-1, 0, 0])],
            vec![(2, 1, [0, -1, 0])],
        ],
        // 2x + 1 = 0 (parity/gcd discharge in presolve).
        vec![vec![(0, 1, [2, 0, 0])]],
        // x ∈ [0, 1] with both endpoints excluded: the disequality
        // approximation treats the nes independently, so both cores must
        // answer the same (spurious) Sat rather than diverge.
        vec![
            vec![(2, 0, [-1, 0, 0])],
            vec![(2, -1, [1, 0, 0])],
            vec![(1, 0, [1, 0, 0])],
            vec![(1, -1, [1, 0, 0])],
        ],
    ];
    for spec in &cases {
        let (cdcl, _) = run_core(SearchCore::Cdcl, spec, &[]);
        let (legacy, _) = run_core(SearchCore::Legacy, spec, &[]);
        assert_eq!(cdcl, legacy, "cores diverged on pinned case {spec:?}");
    }
}
