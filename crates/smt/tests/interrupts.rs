//! Deadline, cancellation, and budget-escalation behavior of the solver.
//!
//! The degradation contract: a tripped resource governor yields
//! `Unknown(reason)` — never a wrong `Sat`/`Unsat`, never a hang — and
//! growing the budget can only move `Unknown` toward a definite answer,
//! never flip a definite answer.

use std::time::{Duration, Instant};

use formad_smt::{
    CancelToken, Deadline, Formula, LinExpr, Literal, SatResult, Solver, SolverBudget, StopReason,
    Term,
};

/// An UNSAT pigeonhole-style instance the splitter cannot solve quickly:
/// `n` 0/1 variables whose sum must exceed `n`. Every one of the `2^n`
/// branches must be refuted individually.
fn hard_unsat_instance(n: usize) -> Solver {
    let mut s = Solver::with_budget(SolverBudget {
        max_lia_calls: u64::MAX,
        max_branches: u64::MAX,
        ..SolverBudget::default()
    });
    let mut sum = Term::int(0);
    for i in 0..n {
        let x = Term::sym(format!("x{i}"));
        let xe = formad_smt::normalize(&x, &mut s.table).unwrap();
        s.assert(Formula::Or(vec![
            Formula::Lit(Literal::eq(xe.clone(), LinExpr::constant(0))),
            Formula::Lit(Literal::eq(xe, LinExpr::constant(1))),
        ]));
        sum = sum + x;
    }
    // sum ≥ n + 1, impossible for 0/1 variables.
    let bound = formad_smt::normalize(&(Term::int(n as i64 + 1) - sum), &mut s.table).unwrap();
    s.assert(Formula::Lit(Literal::le(bound, LinExpr::constant(0))));
    s
}

#[test]
fn hard_query_respects_10ms_deadline() {
    let mut s = hard_unsat_instance(24);
    s.set_timeout(Some(Duration::from_millis(10)));
    let started = Instant::now();
    let r = s.check();
    let elapsed = started.elapsed();
    assert_eq!(r, SatResult::Unknown(StopReason::Deadline));
    assert_eq!(r.stop_reason(), Some(StopReason::Deadline));
    // Generous overshoot allowance for slow CI machines; the point is that
    // an exponential search was abandoned, not that the bound is tight.
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline ignored: ran {elapsed:?}"
    );
    assert_eq!(s.stats.unknowns, 1);
    assert_eq!(s.stats.interrupts, 1);
}

#[test]
fn absolute_deadline_equivalent_to_timeout() {
    let mut s = hard_unsat_instance(24);
    s.set_deadline(Deadline::in_ms(10));
    assert_eq!(s.check(), SatResult::Unknown(StopReason::Deadline));
}

#[test]
fn cancellation_trips_immediately_and_outranks_deadline() {
    let mut s = hard_unsat_instance(8);
    let token = CancelToken::new();
    s.set_cancel_token(token.clone());
    s.set_timeout(Some(Duration::from_millis(1)));
    token.cancel();
    assert_eq!(s.check(), SatResult::Unknown(StopReason::Cancelled));
}

#[test]
fn expired_solver_still_answers_after_clearing_timeout() {
    // A tripped deadline must not poison the solver: clearing it restores
    // full service on the same assertion stack.
    let mut s = hard_unsat_instance(4);
    s.set_timeout(Some(Duration::ZERO));
    assert!(s.check().is_unknown());
    s.set_timeout(None);
    assert_eq!(s.check(), SatResult::Unsat);
}

#[test]
fn small_budget_returns_budget_unknown() {
    let mut s = hard_unsat_instance(16);
    s.set_budget(SolverBudget {
        max_lia_calls: 50,
        max_branches: 10,
        ..SolverBudget::default()
    });
    assert_eq!(s.check(), SatResult::Unknown(StopReason::Budget));
}

#[test]
fn budget_escalation_resolves_unknown_to_unsat() {
    // The retry ladder's premise: re-running the same query with larger
    // counters turns Unknown into the definite answer.
    let mut s = hard_unsat_instance(6);
    s.set_budget(SolverBudget {
        max_lia_calls: 20,
        max_branches: 4,
        ..SolverBudget::default()
    });
    assert_eq!(s.check(), SatResult::Unknown(StopReason::Budget));
    s.set_budget(SolverBudget::default());
    assert_eq!(s.check(), SatResult::Unsat);
}

#[test]
fn stats_merge_saturates() {
    use formad_smt::SolverStats;
    let mut a = SolverStats {
        checks: u64::MAX - 1,
        ..SolverStats::default()
    };
    let b = SolverStats {
        checks: 5,
        lia_calls: 7,
        ..SolverStats::default()
    };
    a.merge(&b);
    assert_eq!(a.checks, u64::MAX);
    assert_eq!(a.lia_calls, 7);
}
