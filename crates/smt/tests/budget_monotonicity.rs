//! Property: growing the work budget (or the deadline) is monotone.
//!
//! A definite verdict obtained under a small budget is never flipped by a
//! larger one — `Unsat` stays `Unsat`, `Sat` stays `Sat` — and `Unknown`
//! only ever resolves toward a definite answer. This is what makes the
//! escalating-retry ladder in `formad-core` sound: retrying with a larger
//! budget can only *improve* the answer.
//!
//! The guarantee falls out of determinism: the search explores the same
//! tree in the same order, and a budget counter only decides where the
//! exploration is cut short.

use proptest::prelude::*;

use formad_smt::{Formula, SatResult, Solver, SolverBudget, Term};

/// A random conjunction of `=` / `≠` constraints between small linear
/// terms over a 4-symbol pool.
fn assert_constraints(s: &mut Solver, spec: &[(u8, u8, i8, bool)]) {
    const SYMS: [&str; 4] = ["a", "b", "c", "d"];
    for (l, r, off, eq) in spec {
        let lhs = Term::sym(SYMS[(*l % 4) as usize]);
        let rhs = Term::sym(SYMS[(*r % 4) as usize]) + Term::int(*off as i64);
        let f = if *eq {
            Formula::term_eq(&lhs, &rhs, &mut s.table).unwrap()
        } else {
            Formula::term_ne(&lhs, &rhs, &mut s.table).unwrap()
        };
        s.assert(f);
    }
}

fn check_under(spec: &[(u8, u8, i8, bool)], budget: SolverBudget) -> SatResult {
    let mut s = Solver::with_budget(budget);
    assert_constraints(&mut s, spec);
    s.check()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn definite_verdicts_survive_budget_growth(
        spec in prop::collection::vec(
            (0u8..4, 0u8..4, -3i8..=3, prop_oneof![Just(true), Just(false)]),
            1..8,
        ),
        lia in 1u64..40,
        branches in 1u64..12,
        factor in 2u64..64,
    ) {
        let small = SolverBudget {
            max_lia_calls: lia,
            max_branches: branches,
            ..SolverBudget::default()
        };
        let large = SolverBudget {
            max_lia_calls: lia.saturating_mul(factor),
            max_branches: branches.saturating_mul(factor),
            ..small
        };
        let r_small = check_under(&spec, small);
        let r_large = check_under(&spec, large);
        match r_small {
            SatResult::Sat | SatResult::Unsat => prop_assert_eq!(
                r_large, r_small,
                "definite verdict flipped under larger budget"
            ),
            SatResult::Unknown(_) => {
                // Unknown may resolve either way or stay Unknown; all are
                // legal. Nothing to assert beyond "no panic, no hang".
            }
        }
    }

    #[test]
    fn unlimited_budget_agrees_with_any_definite_small_verdict(
        spec in prop::collection::vec(
            (0u8..4, 0u8..4, -2i8..=2, prop_oneof![Just(true), Just(false)]),
            1..6,
        ),
        lia in 1u64..25,
    ) {
        let small = SolverBudget {
            max_lia_calls: lia,
            max_branches: 6,
            ..SolverBudget::default()
        };
        let r_small = check_under(&spec, small);
        let r_full = check_under(&spec, SolverBudget::default());
        prop_assert!(!r_full.is_unknown(), "default budget too small for tiny spec");
        if let SatResult::Sat | SatResult::Unsat = r_small {
            prop_assert_eq!(r_small, r_full);
        }
    }
}
