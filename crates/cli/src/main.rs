//! `formad` — command-line front end.
//!
//! ```text
//! formad analyze  FILE --wrt x,y --of z          analysis report only
//!   (alias: prove)
//! formad explain  FILE [ARRAY] --wrt x --of z    per-array proof narrative
//! formad adjoint  FILE --wrt x --of z [options]  print the adjoint program
//! formad versions FILE --wrt x --of z            print all four versions
//! formad exec     FILE [exec options]            run the program and print
//!                                                its outputs (pipe an
//!                                                adjoint from `formad
//!                                                adjoint` into a file to
//!                                                execute generated code)
//! formad compile  FILE [--set k=v --seed S]      ahead-of-time compile the
//!                                                program's parallel regions
//!                                                to a native kernel and
//!                                                print the cached artifact
//!                                                paths (prewarms `exec
//!                                                --backend aot`)
//! formad serve    [serve options]                run the resident JSON/HTTP
//!                                                differentiation service
//!                                                until SIGINT or a client
//!                                                POSTs /v1/shutdown
//! formad fuzz     [fuzz options]                 grammar-driven differential
//!                                                fuzzing: generate well-typed
//!                                                programs and cross-check
//!                                                every oracle pair in the
//!                                                stack (exit 1 on divergence)
//!
//! fuzz options:
//!   --seed N           master seed (default 42); each case derives its
//!                      RNG from (seed, case id), so runs with the same
//!                      seed and flags are byte-identical on stdout
//!   --cases N          number of generated programs (default 100)
//!   --max-loops N      max parallel regions per program (default 3)
//!   --max-arrays N     max input arrays per program (default 4)
//!   --corpus DIR       write a minimized, self-contained reproducer
//!                      file per divergence into DIR
//!   --shrink-budget N  max oracle evaluations the delta-debugging
//!                      shrinker spends per divergence (default 256,
//!                      0 disables shrinking)
//!   --aot-every N      also build + run the AOT kernel on every N-th
//!                      case (one `rustc` invocation per program
//!                      version; default: every 16th, --smoke: never)
//!   --chaos-legacy P   poison the legacy-core oracle with P‰ Unknown
//!                      answers — a self-test that the harness catches,
//!                      shrinks and reports an injected oracle bug
//!   --smoke            CI profile: skip AOT checks so the run stays in
//!                      tens of seconds
//!   --repro FILE       replay one reproducer file instead of running a
//!                      campaign (exit 1 if it still diverges)
//!
//! serve options:
//!   --addr HOST:PORT   bind address (default 127.0.0.1:7878; use :0 for
//!                      an ephemeral port — the bound address is printed
//!                      as the first stdout line)
//!   --workers N        concurrent request slots (default 4)
//!   --queue N          admission queue beyond the running slots
//!                      (default 8); saturation degrades analysis
//!                      requests to the always-safe atomic answer and
//!                      429s `exec` requests with a retry hint
//!   --deadline-ms N    default per-request deadline for requests that
//!                      do not carry their own
//!
//! exec options:
//!   --backend B        sim (default; tree-walking interpreter with the
//!                      synthetic cost model) | native (flat register
//!                      bytecode on real OS threads) | aot (parallel
//!                      regions compiled to a native cdylib via `rustc`,
//!                      cached under `FORMAD_AOT_DIR`, falling back to
//!                      native bytecode if the compile fails). Outputs
//!                      are bitwise-identical across all three.
//!   --threads N        execution threads for `!$omp parallel do` regions
//!                      (default 1)
//!   --set k=v,...      scalar parameter values; every integer parameter
//!                      must be set (array extents depend on them)
//!   --seed S           seed for the deterministic fill of real array
//!                      parameters (values in (-1, 1); default 42).
//!                      Integer arrays are filled with 1, 2, 3, … so
//!                      index arrays stay in bounds.
//!   --deadline-ms N    hard wall-clock budget, same contract as the
//!                      analysis verbs: expiry is an error (exit 7)
//!
//! options:
//!   --wrt a,b          independent variables (differentiation inputs)
//!   --of  c,d          dependent variables (differentiation outputs)
//!   --mode MODE        formad | serial | atomic | reduction  (default formad)
//!   --no-stride        disable stride root assertions
//!   --no-contexts      disable control contexts (ablation)
//!   --no-increment     disable exact-increment detection (ablation)
//!   --table1 NAME      print a Table-1 row instead of the full report
//!   --emit DIALECT     fortran (default) | c — output dialect for
//!                      adjoint/versions
//!   --prover-timeout-ms N
//!                      wall-clock allowance per prover query; expiry
//!                      degrades the affected arrays to atomics
//!   --deadline-ms N    hard wall-clock budget for the whole run; expiry
//!                      is an error (exit 7), unlike per-query timeouts
//!   --jobs N           prover worker threads (0 or omitted = one per
//!                      available core); reports are byte-identical for
//!                      every value
//!   --no-cache         disable the canonical proof cache (useful for
//!                      benchmarking; verdicts are unaffected)
//!   --search-core CORE cdcl (default) | legacy — SMT search engine;
//!                      legacy keeps the original enumerate-and-split
//!                      core as a differential oracle. Verdicts, reports
//!                      and traces are byte-identical for both (the
//!                      FORMAD_SEARCH_CORE env var sets the default)
//!   --trace PATH       write the structured proof trace (versioned JSON,
//!                      schema formad-trace/v1) to PATH; its `events`
//!                      section is byte-identical across --jobs and cache
//!                      settings
//! ```
//!
//! Exit codes: 0 success (a report that keeps every safeguard is still a
//! success — degradation is the contract, not an error), 2 usage/IO,
//! 3 parse, 4 validation, 5 AD failure, 6 prover panic that escaped the
//! degradation ladder, 7 deadline.
//!
//! Test hook: setting `FORMAD_INTERNAL_PANIC=1` panics deliberately inside
//! the run so the exit-6 last-resort net stays covered by the test suite.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Duration;

use formad::{
    Deadline, Formad, FormadErrorKind, FormadOptions, IncMode, ParallelTreatment, SearchCore,
    TraceSink,
};
use formad_ir::{parse_any, program_to_clike, program_to_string};

/// Distinct nonzero exit code per error classification.
fn code_for(kind: FormadErrorKind) -> ExitCode {
    ExitCode::from(match kind {
        FormadErrorKind::Parse => 3,
        FormadErrorKind::Validate => 4,
        FormadErrorKind::Ad => 5,
        FormadErrorKind::ProverPanic => 6,
        FormadErrorKind::Deadline => 7,
    })
}

struct Args {
    command: String,
    file: String,
    /// Positional array name for `explain` (narrates every decision when
    /// omitted).
    array: Option<String>,
    wrt: Vec<String>,
    of: Vec<String>,
    mode: String,
    emit: String,
    stride: bool,
    contexts: bool,
    increment: bool,
    table1: Option<String>,
    prover_timeout: Option<Duration>,
    deadline_ms: Option<u64>,
    jobs: usize,
    cache: bool,
    trace: Option<String>,
    /// `None` keeps the `RegionOptions` default (`FORMAD_SEARCH_CORE` or
    /// the built-in CDCL core).
    search_core: Option<SearchCore>,
    /// `exec`: execution backend, `sim` or `native`.
    backend: String,
    /// `exec`: thread count for parallel regions.
    threads: usize,
    /// `exec`: scalar parameter assignments, in `--set` order.
    sets: Vec<(String, String)>,
    /// `exec`: seed for the deterministic real-array fill.
    seed: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: formad <analyze|prove|explain|adjoint|versions> FILE [ARRAY] \
         --wrt a,b --of c,d \
         [--mode formad|serial|atomic|reduction] [--no-stride] \
         [--no-contexts] [--no-increment] [--table1 NAME] \
         [--prover-timeout-ms N] [--deadline-ms N] [--jobs N] [--no-cache] \
         [--search-core cdcl|legacy] [--trace PATH]\n       \
         formad exec FILE [--backend sim|native|aot] [--threads N] \
         [--set k=v,...] [--seed S] [--deadline-ms N]\n       \
         formad compile FILE [--set k=v,...] [--seed S]\n       \
         formad serve [--addr HOST:PORT] [--workers N] [--queue N]\n       \
         formad fuzz [--seed N] [--cases N] [--max-loops N] [--max-arrays N] \
         [--corpus DIR] [--shrink-budget N] [--aot-every N] [--chaos-legacy P] \
         [--smoke] [--repro FILE]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let file = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        file,
        array: None,
        wrt: Vec::new(),
        of: Vec::new(),
        mode: "formad".into(),
        emit: "fortran".into(),
        stride: true,
        contexts: true,
        increment: true,
        table1: None,
        prover_timeout: None,
        deadline_ms: None,
        jobs: 0,
        cache: true,
        trace: None,
        search_core: None,
        backend: "sim".into(),
        threads: 1,
        sets: Vec::new(),
        seed: 42,
    };
    let rest: Vec<String> = argv.collect();
    let mut k = 0;
    while k < rest.len() {
        match rest[k].as_str() {
            "--wrt" => {
                k += 1;
                args.wrt = rest
                    .get(k)
                    .ok_or_else(usage)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--of" => {
                k += 1;
                args.of = rest
                    .get(k)
                    .ok_or_else(usage)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--mode" => {
                k += 1;
                args.mode = rest.get(k).ok_or_else(usage)?.clone();
            }
            "--emit" => {
                k += 1;
                args.emit = rest.get(k).ok_or_else(usage)?.clone();
            }
            "--table1" => {
                k += 1;
                args.table1 = Some(rest.get(k).ok_or_else(usage)?.clone());
            }
            "--prover-timeout-ms" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match raw.parse::<u64>() {
                    Ok(ms) => args.prover_timeout = Some(Duration::from_millis(ms)),
                    Err(_) => {
                        eprintln!("--prover-timeout-ms expects an integer, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--deadline-ms" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match raw.parse::<u64>() {
                    Ok(ms) => args.deadline_ms = Some(ms),
                    Err(_) => {
                        eprintln!("--deadline-ms expects an integer, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--trace" => {
                k += 1;
                args.trace = Some(rest.get(k).ok_or_else(usage)?.clone());
            }
            "--jobs" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match raw.parse::<usize>() {
                    Ok(n) => args.jobs = n,
                    Err(_) => {
                        eprintln!("--jobs expects an integer, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--search-core" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match SearchCore::parse(raw) {
                    Some(core) => args.search_core = Some(core),
                    None => {
                        eprintln!("--search-core expects `cdcl` or `legacy`, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--backend" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                if !matches!(raw.as_str(), "sim" | "native" | "aot") {
                    eprintln!("--backend expects `sim`, `native` or `aot`, got `{raw}`");
                    return Err(usage());
                }
                args.backend = raw.clone();
            }
            "--threads" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => args.threads = n,
                    _ => {
                        eprintln!("--threads expects a positive integer, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--set" => {
                k += 1;
                for pair in rest.get(k).ok_or_else(usage)?.split(',') {
                    let Some((name, value)) = pair.split_once('=') else {
                        eprintln!("--set expects k=v pairs, got `{pair}`");
                        return Err(usage());
                    };
                    args.sets
                        .push((name.trim().to_string(), value.trim().to_string()));
                }
            }
            "--seed" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match raw.parse::<u64>() {
                    Ok(s) => args.seed = s,
                    Err(_) => {
                        eprintln!("--seed expects an integer, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--no-cache" => args.cache = false,
            "--no-stride" => args.stride = false,
            "--no-contexts" => args.contexts = false,
            "--no-increment" => args.increment = false,
            other if !other.starts_with('-') && args.array.is_none() => {
                // Bare positional: the array name for `explain`.
                args.array = Some(other.to_string());
            }
            other => {
                eprintln!("unknown option `{other}`");
                return Err(usage());
            }
        }
        k += 1;
    }
    // `exec` and `compile` take the program as-is; everything else
    // differentiates and needs the independent/dependent sets.
    if !matches!(args.command.as_str(), "exec" | "compile")
        && (args.wrt.is_empty() || args.of.is_empty())
    {
        eprintln!("--wrt and --of are required");
        return Err(usage());
    }
    if !matches!(args.emit.as_str(), "fortran" | "c") {
        eprintln!("unknown emit dialect `{}`", args.emit);
        return Err(usage());
    }
    Ok(args)
}

/// One stderr line of proof-cache effectiveness, printed after every
/// analysis so benchmarking scripts can scrape it without parsing the
/// report (which stays byte-identical across cache and jobs settings).
fn cache_diag(a: &formad::FormadAnalysis, cache_enabled: bool) {
    if !cache_enabled {
        eprintln!("formad: prover cache disabled");
        return;
    }
    let s = &a.stats;
    eprintln!(
        "formad: prover cache: {} hits / {} misses / {} inserts",
        s.cache_hits, s.cache_misses, s.cache_inserts
    );
}

/// One stderr line of search-core work counters (scrapeable like
/// [`cache_diag`]; the report itself never contains perf numbers).
fn search_diag(a: &formad::FormadAnalysis, core: SearchCore) {
    let s = &a.stats;
    eprintln!(
        "formad: search core {}: {} propagations / {} conflicts / {} learned ({} lits) / \
         {} restarts / {} presolve discharges",
        core.label(),
        s.propagations,
        s.conflicts,
        s.learned_clauses,
        s.learned_literals,
        s.restarts,
        s.presolve_discharges
    );
}

fn render(p: &formad_ir::Program, emit: &str) -> String {
    match emit {
        "c" => program_to_clike(p),
        _ => program_to_string(p),
    }
}

fn main() -> ExitCode {
    // `serve` and `fuzz` take no FILE argument, so they branch before
    // the normal parser (which requires one).
    {
        let mut argv = std::env::args().skip(1);
        match argv.next().as_deref() {
            Some("serve") => return serve_cmd(&argv.collect::<Vec<String>>()),
            Some("fuzz") => return fuzz_cmd(&argv.collect::<Vec<String>>()),
            _ => {}
        }
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(c) => return c,
    };
    let src = match fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::from(2);
        }
    };
    // Both the Fortran-like and the C-like dialects are accepted.
    let primal = match parse_any(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return code_for(FormadErrorKind::Parse);
        }
    };
    let errs = formad_ir::validate(&primal);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("validation: {e}");
        }
        return code_for(FormadErrorKind::Validate);
    }

    // The pipeline's degradation ladder absorbs prover faults internally;
    // this is the last-resort net so a bug anywhere below still exits
    // with a diagnostic instead of a raw panic trace and code 101.
    match catch_unwind(AssertUnwindSafe(|| run(&args, &primal))) {
        Ok(code) => code,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            eprintln!("formad [prover-panic]: internal panic escaped recovery: {msg}");
            code_for(FormadErrorKind::ProverPanic)
        }
    }
}

/// Write the recorded trace (if `--trace` was given) to its file.
fn write_trace(args: &Args, sink: &Option<TraceSink>) -> Result<(), ExitCode> {
    let (Some(path), Some(s)) = (&args.trace, sink) else {
        return Ok(());
    };
    let doc = formad::trace_json(&s.snapshot());
    if let Err(e) = fs::write(path, doc) {
        eprintln!("cannot write trace to {path}: {e}");
        return Err(ExitCode::from(2));
    }
    Ok(())
}

/// `formad serve`: run the resident differentiation service until
/// SIGINT or a client POSTs `/v1/shutdown`. The bound address is the
/// first stdout line, so scripts can start on an ephemeral port
/// (`--addr 127.0.0.1:0`) and read where the daemon landed.
fn serve_cmd(rest: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = formad_serve::ServiceConfig::default();
    let mut k = 0;
    while k < rest.len() {
        let value = |k: &mut usize| -> Option<String> {
            *k += 1;
            rest.get(*k).cloned()
        };
        match rest[k].as_str() {
            "--addr" => match value(&mut k) {
                Some(a) => addr = a,
                None => return usage(),
            },
            "--workers" => match value(&mut k).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.workers = n,
                _ => return usage(),
            },
            "--queue" => match value(&mut k).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => cfg.queue = n,
                _ => return usage(),
            },
            "--deadline-ms" => match value(&mut k).and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => cfg.default_deadline_ms = Some(ms),
                _ => return usage(),
            },
            _ => return usage(),
        }
        k += 1;
    }
    formad_serve::install_sigint_handler();
    let mut handle = match formad_serve::serve(&addr, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    println!("formad serve listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // The accept loop watches SIGINT and `/v1/shutdown` itself; joining
    // blocks until either fires and every in-flight request drained.
    handle.join();
    println!("formad serve: drained, bye");
    ExitCode::SUCCESS
}

/// `formad fuzz`: generate well-typed programs and cross-check every
/// oracle pair in the stack. Per-case lines go to stdout and are
/// byte-identical across runs with the same seed and flags (that is the
/// CI fuzz-smoke contract); the timing line goes to stderr. Exit 0 when
/// every case agrees, 1 when any oracle pair diverged, 2 on usage.
fn fuzz_cmd(rest: &[String]) -> ExitCode {
    use formad_fuzz::{run_fuzz, ChaosConfig, EngineCache, FuzzConfig, Reproducer};

    let mut cfg = FuzzConfig::default();
    let mut repro_path: Option<String> = None;
    let mut smoke = false;
    let mut aot_every_given = false;
    let mut k = 0;
    while k < rest.len() {
        let value = |k: &mut usize| -> Option<String> {
            *k += 1;
            rest.get(*k).cloned()
        };
        match rest[k].as_str() {
            "--seed" => match value(&mut k).and_then(|v| v.parse().ok()) {
                Some(s) => cfg.seed = s,
                None => return usage(),
            },
            "--cases" => match value(&mut k).and_then(|v| v.parse().ok()) {
                Some(n) => cfg.cases = n,
                None => return usage(),
            },
            "--max-loops" => match value(&mut k).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.gen.max_loops = n,
                _ => return usage(),
            },
            "--max-arrays" => match value(&mut k).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.gen.max_arrays = n,
                _ => return usage(),
            },
            "--corpus" => match value(&mut k) {
                Some(d) => cfg.corpus = Some(std::path::PathBuf::from(d)),
                None => return usage(),
            },
            "--shrink-budget" => match value(&mut k).and_then(|v| v.parse().ok()) {
                Some(n) => cfg.shrink_budget = n,
                None => return usage(),
            },
            "--aot-every" => match value(&mut k).and_then(|v| v.parse().ok()) {
                Some(n) => {
                    cfg.aot_every = n;
                    aot_every_given = true;
                }
                None => return usage(),
            },
            "--chaos-legacy" => match value(&mut k).and_then(|v| v.parse::<u16>().ok()) {
                Some(per_mille) if per_mille <= 1000 => {
                    cfg.oracle.poison_legacy = Some(ChaosConfig {
                        seed: cfg.seed,
                        panic_per_mille: 0,
                        unknown_per_mille: per_mille,
                        delay_per_mille: 0,
                        delay: Duration::ZERO,
                    });
                }
                _ => return usage(),
            },
            "--smoke" => smoke = true,
            "--repro" => match value(&mut k) {
                Some(p) => repro_path = Some(p),
                None => return usage(),
            },
            other => {
                eprintln!("unknown fuzz option `{other}`");
                return usage();
            }
        }
        k += 1;
    }
    if let Some(path) = repro_path {
        let repro = match Reproducer::load(std::path::Path::new(&path)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("formad fuzz --repro {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut engines = EngineCache::new();
        return match repro.run(&mut engines) {
            Err(d) => {
                println!("reproduces: {d}");
                ExitCode::from(1)
            }
            Ok(_) => {
                println!("no divergence: the reproducer runs clean");
                ExitCode::SUCCESS
            }
        };
    }
    if smoke {
        cfg.aot_every = 0;
        cfg.oracle.check_aot = false;
    } else if !aot_every_given {
        cfg.aot_every = 16;
    }
    let t0 = std::time::Instant::now();
    let out = match run_fuzz(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("formad fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    for line in &out.lines {
        println!("{line}");
    }
    eprintln!(
        "formad: fuzz {} cases in {:.3}s",
        cfg.cases,
        t0.elapsed().as_secs_f64()
    );
    if out.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Bind `--set`/`--seed` parameters for `exec`/`compile`, mapping bind
/// failures onto the shared exit-code ladder.
fn bind_for_exec(
    args: &Args,
    primal: &formad_ir::Program,
) -> Result<formad_machine::Bindings, ExitCode> {
    use formad_machine::{bind_params, BindError};
    match bind_params(primal, &args.sets, args.seed) {
        Ok(b) => Ok(b),
        Err(e @ BindError::Lower(_)) => {
            eprintln!("{e}");
            Err(code_for(FormadErrorKind::Validate))
        }
        Err(e @ BindError::MissingInt { .. }) => {
            eprintln!("{e}");
            Err(ExitCode::from(2))
        }
        Err(e) => {
            eprintln!("--set: {e}");
            Err(ExitCode::from(2))
        }
    }
}

/// `formad exec`: bind parameters, run on the chosen backend, print the
/// `intent(out)`/`intent(inout)` results. All three backends are
/// bitwise-identical, so this output can be diffed across them directly.
/// `--deadline-ms` is honored like `prove`: expiry — before or during
/// the run — is a hard error (exit 7), so every CLI verb shares one
/// deadline story and the service can reuse it per-request.
fn exec_cmd(args: &Args, primal: &formad_ir::Program) -> ExitCode {
    use formad_machine::{output_lines, run, run_aot, run_native, Machine};

    let deadline = args.deadline_ms.map(Deadline::in_ms);
    if let Some(c) = check_exec_deadline(&deadline, "execution started") {
        return c;
    }
    let mut bind = match bind_for_exec(args, primal) {
        Ok(b) => b,
        Err(c) => return c,
    };

    let t0 = std::time::Instant::now();
    let res = match args.backend.as_str() {
        "native" => run_native(primal, &mut bind, args.threads),
        "aot" => run_aot(primal, &mut bind, args.threads).map(|fallback| {
            // Degradation, not errors: a failed kernel build lands on the
            // bytecode backend with identical results and a stderr note.
            if let Some(reason) = fallback {
                eprintln!("formad: aot unavailable, fell back to native bytecode ({reason})");
            }
        }),
        _ => run(primal, &mut bind, &Machine::with_threads(args.threads)).map(|_| ()),
    };
    let elapsed = t0.elapsed();
    if let Err(e) = res {
        eprintln!("execution failed: {e}");
        return code_for(FormadErrorKind::Validate);
    }
    if let Some(c) = check_exec_deadline(&deadline, "execution finished") {
        return c;
    }
    eprintln!(
        "formad: exec `{}` backend={} threads={} in {:.6}s",
        primal.name,
        args.backend,
        args.threads,
        elapsed.as_secs_f64()
    );
    for line in output_lines(primal, &bind) {
        println!("{line}");
    }
    ExitCode::SUCCESS
}

/// `formad compile`: ahead-of-time build the native kernel for a
/// program's parallel regions and print where the artifacts landed, so a
/// later `exec --backend aot` (or a serve instance sharing the same
/// `FORMAD_AOT_DIR`) starts warm. Unlike `exec`, a failed kernel build
/// here is a hard error (exit 2): the entire point of the verb is the
/// artifact, so there is nothing to degrade to.
fn compile_cmd(args: &Args, primal: &formad_ir::Program) -> ExitCode {
    use formad_machine::{aot, compile, load_or_compile, lower};

    let bind = match bind_for_exec(args, primal) {
        Ok(b) => b,
        Err(c) => return c,
    };
    let lp = match lower(primal, &bind) {
        Ok(lp) => lp,
        Err(e) => {
            eprintln!("lower: {e}");
            return code_for(FormadErrorKind::Validate);
        }
    };
    let bc = match compile(&lp, primal) {
        Ok(bc) => bc,
        Err(e) => {
            eprintln!("bytecode: {e}");
            return code_for(FormadErrorKind::Validate);
        }
    };
    // Only parallel regions get AOT kernels; a purely sequential program
    // has nothing to build and shouldn't cost a rustc invocation.
    if bc.regions.is_empty() {
        println!("regions: 0");
        println!(
            "nothing to compile: `{}` has no parallel regions",
            primal.name
        );
        return ExitCode::SUCCESS;
    }
    let t0 = std::time::Instant::now();
    let kernel = match load_or_compile(&lp, &bc) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("formad compile: {e}");
            return ExitCode::from(2);
        }
    };
    let stats = aot::stats();
    eprintln!(
        "formad: compile `{}` in {:.3}s ({})",
        primal.name,
        t0.elapsed().as_secs_f64(),
        if stats.compiles > 0 {
            "fresh build"
        } else {
            "cache hit"
        }
    );
    println!("hash:    {}", kernel.hash());
    println!("regions: {}", kernel.region_count());
    println!("cdylib:  {}", kernel.lib_path().display());
    println!("source:  {}", kernel.source_path().display());
    ExitCode::SUCCESS
}

/// Exec's half of the shared deadline story: expiry is the same hard
/// failure (exit 7) the analysis pipeline reports, diagnostics included.
fn check_exec_deadline(deadline: &Option<Deadline>, stage: &str) -> Option<ExitCode> {
    let d = deadline.as_ref()?;
    if !d.expired() {
        return None;
    }
    eprintln!(
        "{}",
        formad::FormadError::new(
            FormadErrorKind::Deadline,
            format!("global deadline expired before {stage}"),
        )
    );
    Some(code_for(FormadErrorKind::Deadline))
}

fn run(args: &Args, primal: &formad_ir::Program) -> ExitCode {
    if std::env::var_os("FORMAD_INTERNAL_PANIC").is_some() {
        panic!("FORMAD_INTERNAL_PANIC test hook tripped");
    }
    if args.command == "exec" {
        return exec_cmd(args, primal);
    }
    if args.command == "compile" {
        return compile_cmd(args, primal);
    }
    let wrt: Vec<&str> = args.wrt.iter().map(|s| s.as_str()).collect();
    let of: Vec<&str> = args.of.iter().map(|s| s.as_str()).collect();
    let mut opts = FormadOptions::new(&wrt, &of);
    opts.region.stride_constraints = args.stride;
    opts.region.use_contexts = args.contexts;
    opts.region.use_increment_detection = args.increment;
    opts.region.prover_timeout = args.prover_timeout;
    opts.region.deadline = args.deadline_ms.map(Deadline::in_ms);
    opts.region.jobs = args.jobs;
    if let Some(core) = args.search_core {
        opts.region.search_core = core;
    }
    if !args.cache {
        opts.region.cache = None;
    }
    // `explain` always needs the event stream; other commands record one
    // only when `--trace` asks for it.
    let sink = (args.trace.is_some() || args.command == "explain").then(TraceSink::new);
    opts.region.trace = sink.clone();
    let core = opts.region.search_core;
    let tool = Formad::new(opts);

    match args.command.as_str() {
        "analyze" | "prove" => {
            let a = match tool.analyze(primal) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return code_for(e.kind);
                }
            };
            cache_diag(&a, args.cache);
            search_diag(&a, core);
            match &args.table1 {
                Some(name) => {
                    println!("{}", formad::table1_header());
                    println!("{}", formad::table1_row(name, &a));
                }
                None => print!("{}", formad::full_report(&primal.name, &a)),
            }
            if let Err(c) = write_trace(args, &sink) {
                return c;
            }
            ExitCode::SUCCESS
        }
        "explain" => {
            let a = match tool.analyze(primal) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return code_for(e.kind);
                }
            };
            cache_diag(&a, args.cache);
            search_diag(&a, core);
            let events = sink.as_ref().map(TraceSink::snapshot).unwrap_or_default();
            print!("{}", formad::explain(&events, args.array.as_deref()));
            if let Err(c) = write_trace(args, &sink) {
                return c;
            }
            ExitCode::SUCCESS
        }
        "adjoint" => {
            let treatment = match args.mode.as_str() {
                "formad" => None,
                "serial" => Some(ParallelTreatment::Serial),
                "atomic" => Some(ParallelTreatment::Uniform(IncMode::Atomic)),
                "reduction" => Some(ParallelTreatment::Uniform(IncMode::Reduction)),
                other => {
                    eprintln!("unknown mode `{other}`");
                    return ExitCode::from(2);
                }
            };
            let adjoint = match treatment {
                None => match tool.differentiate(primal) {
                    Ok(r) => {
                        cache_diag(&r.analysis, args.cache);
                        search_diag(&r.analysis, core);
                        eprint!("{}", formad::full_report(&primal.name, &r.analysis));
                        r.adjoint
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return code_for(e.kind);
                    }
                },
                Some(t) => match tool.adjoint_with(primal, t) {
                    Ok(a) => a,
                    Err(e) => {
                        eprintln!("{e}");
                        return code_for(e.kind);
                    }
                },
            };
            print!("{}", render(&adjoint, &args.emit));
            if let Err(c) = write_trace(args, &sink) {
                return c;
            }
            ExitCode::SUCCESS
        }
        "versions" => {
            let r = match tool.differentiate(primal) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return code_for(e.kind);
                }
            };
            println!("! ===== analysis =====");
            for line in formad::full_report(&primal.name, &r.analysis).lines() {
                println!("! {line}");
            }
            println!("\n! ===== adjoint (FormAD) =====");
            print!("{}", render(&r.adjoint, &args.emit));
            for (label, t) in [
                ("serial", ParallelTreatment::Serial),
                ("atomic", ParallelTreatment::Uniform(IncMode::Atomic)),
                ("reduction", ParallelTreatment::Uniform(IncMode::Reduction)),
            ] {
                println!("\n! ===== adjoint ({label}) =====");
                match tool.adjoint_with(primal, t) {
                    Ok(a) => print!("{}", render(&a, &args.emit)),
                    Err(e) => {
                        eprintln!("{e}");
                        return code_for(e.kind);
                    }
                }
            }
            if let Err(c) = write_trace(args, &sink) {
                return c;
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
