//! `formad` — command-line front end.
//!
//! ```text
//! formad analyze  FILE --wrt x,y --of z          analysis report only
//!   (alias: prove)
//! formad explain  FILE [ARRAY] --wrt x --of z    per-array proof narrative
//! formad adjoint  FILE --wrt x --of z [options]  print the adjoint program
//! formad versions FILE --wrt x --of z            print all four versions
//! formad exec     FILE [exec options]            run the program and print
//!                                                its outputs (pipe an
//!                                                adjoint from `formad
//!                                                adjoint` into a file to
//!                                                execute generated code)
//!
//! exec options:
//!   --backend B        sim (default; tree-walking interpreter with the
//!                      synthetic cost model) | native (flat register
//!                      bytecode on real OS threads). Outputs are
//!                      bitwise-identical between the two.
//!   --threads N        execution threads for `!$omp parallel do` regions
//!                      (default 1)
//!   --set k=v,...      scalar parameter values; every integer parameter
//!                      must be set (array extents depend on them)
//!   --seed S           seed for the deterministic fill of real array
//!                      parameters (values in (-1, 1); default 42).
//!                      Integer arrays are filled with 1, 2, 3, … so
//!                      index arrays stay in bounds.
//!
//! options:
//!   --wrt a,b          independent variables (differentiation inputs)
//!   --of  c,d          dependent variables (differentiation outputs)
//!   --mode MODE        formad | serial | atomic | reduction  (default formad)
//!   --no-stride        disable stride root assertions
//!   --no-contexts      disable control contexts (ablation)
//!   --no-increment     disable exact-increment detection (ablation)
//!   --table1 NAME      print a Table-1 row instead of the full report
//!   --emit DIALECT     fortran (default) | c — output dialect for
//!                      adjoint/versions
//!   --prover-timeout-ms N
//!                      wall-clock allowance per prover query; expiry
//!                      degrades the affected arrays to atomics
//!   --deadline-ms N    hard wall-clock budget for the whole run; expiry
//!                      is an error (exit 7), unlike per-query timeouts
//!   --jobs N           prover worker threads (0 or omitted = one per
//!                      available core); reports are byte-identical for
//!                      every value
//!   --no-cache         disable the canonical proof cache (useful for
//!                      benchmarking; verdicts are unaffected)
//!   --search-core CORE cdcl (default) | legacy — SMT search engine;
//!                      legacy keeps the original enumerate-and-split
//!                      core as a differential oracle. Verdicts, reports
//!                      and traces are byte-identical for both (the
//!                      FORMAD_SEARCH_CORE env var sets the default)
//!   --trace PATH       write the structured proof trace (versioned JSON,
//!                      schema formad-trace/v1) to PATH; its `events`
//!                      section is byte-identical across --jobs and cache
//!                      settings
//! ```
//!
//! Exit codes: 0 success (a report that keeps every safeguard is still a
//! success — degradation is the contract, not an error), 2 usage/IO,
//! 3 parse, 4 validation, 5 AD failure, 6 prover panic that escaped the
//! degradation ladder, 7 deadline.
//!
//! Test hook: setting `FORMAD_INTERNAL_PANIC=1` panics deliberately inside
//! the run so the exit-6 last-resort net stays covered by the test suite.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Duration;

use formad::{
    Deadline, Formad, FormadErrorKind, FormadOptions, IncMode, ParallelTreatment, SearchCore,
    TraceSink,
};
use formad_ir::{parse_any, program_to_clike, program_to_string};

/// Distinct nonzero exit code per error classification.
fn code_for(kind: FormadErrorKind) -> ExitCode {
    ExitCode::from(match kind {
        FormadErrorKind::Parse => 3,
        FormadErrorKind::Validate => 4,
        FormadErrorKind::Ad => 5,
        FormadErrorKind::ProverPanic => 6,
        FormadErrorKind::Deadline => 7,
    })
}

struct Args {
    command: String,
    file: String,
    /// Positional array name for `explain` (narrates every decision when
    /// omitted).
    array: Option<String>,
    wrt: Vec<String>,
    of: Vec<String>,
    mode: String,
    emit: String,
    stride: bool,
    contexts: bool,
    increment: bool,
    table1: Option<String>,
    prover_timeout: Option<Duration>,
    deadline_ms: Option<u64>,
    jobs: usize,
    cache: bool,
    trace: Option<String>,
    /// `None` keeps the `RegionOptions` default (`FORMAD_SEARCH_CORE` or
    /// the built-in CDCL core).
    search_core: Option<SearchCore>,
    /// `exec`: execution backend, `sim` or `native`.
    backend: String,
    /// `exec`: thread count for parallel regions.
    threads: usize,
    /// `exec`: scalar parameter assignments, in `--set` order.
    sets: Vec<(String, String)>,
    /// `exec`: seed for the deterministic real-array fill.
    seed: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: formad <analyze|prove|explain|adjoint|versions> FILE [ARRAY] \
         --wrt a,b --of c,d \
         [--mode formad|serial|atomic|reduction] [--no-stride] \
         [--no-contexts] [--no-increment] [--table1 NAME] \
         [--prover-timeout-ms N] [--deadline-ms N] [--jobs N] [--no-cache] \
         [--search-core cdcl|legacy] [--trace PATH]\n       \
         formad exec FILE [--backend sim|native] [--threads N] \
         [--set k=v,...] [--seed S]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let file = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        file,
        array: None,
        wrt: Vec::new(),
        of: Vec::new(),
        mode: "formad".into(),
        emit: "fortran".into(),
        stride: true,
        contexts: true,
        increment: true,
        table1: None,
        prover_timeout: None,
        deadline_ms: None,
        jobs: 0,
        cache: true,
        trace: None,
        search_core: None,
        backend: "sim".into(),
        threads: 1,
        sets: Vec::new(),
        seed: 42,
    };
    let rest: Vec<String> = argv.collect();
    let mut k = 0;
    while k < rest.len() {
        match rest[k].as_str() {
            "--wrt" => {
                k += 1;
                args.wrt = rest
                    .get(k)
                    .ok_or_else(usage)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--of" => {
                k += 1;
                args.of = rest
                    .get(k)
                    .ok_or_else(usage)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--mode" => {
                k += 1;
                args.mode = rest.get(k).ok_or_else(usage)?.clone();
            }
            "--emit" => {
                k += 1;
                args.emit = rest.get(k).ok_or_else(usage)?.clone();
            }
            "--table1" => {
                k += 1;
                args.table1 = Some(rest.get(k).ok_or_else(usage)?.clone());
            }
            "--prover-timeout-ms" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match raw.parse::<u64>() {
                    Ok(ms) => args.prover_timeout = Some(Duration::from_millis(ms)),
                    Err(_) => {
                        eprintln!("--prover-timeout-ms expects an integer, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--deadline-ms" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match raw.parse::<u64>() {
                    Ok(ms) => args.deadline_ms = Some(ms),
                    Err(_) => {
                        eprintln!("--deadline-ms expects an integer, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--trace" => {
                k += 1;
                args.trace = Some(rest.get(k).ok_or_else(usage)?.clone());
            }
            "--jobs" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match raw.parse::<usize>() {
                    Ok(n) => args.jobs = n,
                    Err(_) => {
                        eprintln!("--jobs expects an integer, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--search-core" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match SearchCore::parse(raw) {
                    Some(core) => args.search_core = Some(core),
                    None => {
                        eprintln!("--search-core expects `cdcl` or `legacy`, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--backend" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                if !matches!(raw.as_str(), "sim" | "native") {
                    eprintln!("--backend expects `sim` or `native`, got `{raw}`");
                    return Err(usage());
                }
                args.backend = raw.clone();
            }
            "--threads" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => args.threads = n,
                    _ => {
                        eprintln!("--threads expects a positive integer, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--set" => {
                k += 1;
                for pair in rest.get(k).ok_or_else(usage)?.split(',') {
                    let Some((name, value)) = pair.split_once('=') else {
                        eprintln!("--set expects k=v pairs, got `{pair}`");
                        return Err(usage());
                    };
                    args.sets
                        .push((name.trim().to_string(), value.trim().to_string()));
                }
            }
            "--seed" => {
                k += 1;
                let raw = rest.get(k).ok_or_else(usage)?;
                match raw.parse::<u64>() {
                    Ok(s) => args.seed = s,
                    Err(_) => {
                        eprintln!("--seed expects an integer, got `{raw}`");
                        return Err(usage());
                    }
                }
            }
            "--no-cache" => args.cache = false,
            "--no-stride" => args.stride = false,
            "--no-contexts" => args.contexts = false,
            "--no-increment" => args.increment = false,
            other if !other.starts_with('-') && args.array.is_none() => {
                // Bare positional: the array name for `explain`.
                args.array = Some(other.to_string());
            }
            other => {
                eprintln!("unknown option `{other}`");
                return Err(usage());
            }
        }
        k += 1;
    }
    // `exec` runs the program as-is; everything else differentiates and
    // needs the independent/dependent sets.
    if args.command != "exec" && (args.wrt.is_empty() || args.of.is_empty()) {
        eprintln!("--wrt and --of are required");
        return Err(usage());
    }
    if !matches!(args.emit.as_str(), "fortran" | "c") {
        eprintln!("unknown emit dialect `{}`", args.emit);
        return Err(usage());
    }
    Ok(args)
}

/// One stderr line of proof-cache effectiveness, printed after every
/// analysis so benchmarking scripts can scrape it without parsing the
/// report (which stays byte-identical across cache and jobs settings).
fn cache_diag(a: &formad::FormadAnalysis, cache_enabled: bool) {
    if !cache_enabled {
        eprintln!("formad: prover cache disabled");
        return;
    }
    let s = &a.stats;
    eprintln!(
        "formad: prover cache: {} hits / {} misses / {} inserts",
        s.cache_hits, s.cache_misses, s.cache_inserts
    );
}

/// One stderr line of search-core work counters (scrapeable like
/// [`cache_diag`]; the report itself never contains perf numbers).
fn search_diag(a: &formad::FormadAnalysis, core: SearchCore) {
    let s = &a.stats;
    eprintln!(
        "formad: search core {}: {} propagations / {} conflicts / {} learned ({} lits) / \
         {} restarts / {} presolve discharges",
        core.label(),
        s.propagations,
        s.conflicts,
        s.learned_clauses,
        s.learned_literals,
        s.restarts,
        s.presolve_discharges
    );
}

fn render(p: &formad_ir::Program, emit: &str) -> String {
    match emit {
        "c" => program_to_clike(p),
        _ => program_to_string(p),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(c) => return c,
    };
    let src = match fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::from(2);
        }
    };
    // Both the Fortran-like and the C-like dialects are accepted.
    let primal = match parse_any(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return code_for(FormadErrorKind::Parse);
        }
    };
    let errs = formad_ir::validate(&primal);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("validation: {e}");
        }
        return code_for(FormadErrorKind::Validate);
    }

    // The pipeline's degradation ladder absorbs prover faults internally;
    // this is the last-resort net so a bug anywhere below still exits
    // with a diagnostic instead of a raw panic trace and code 101.
    match catch_unwind(AssertUnwindSafe(|| run(&args, &primal))) {
        Ok(code) => code,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            eprintln!("formad [prover-panic]: internal panic escaped recovery: {msg}");
            code_for(FormadErrorKind::ProverPanic)
        }
    }
}

/// Write the recorded trace (if `--trace` was given) to its file.
fn write_trace(args: &Args, sink: &Option<TraceSink>) -> Result<(), ExitCode> {
    let (Some(path), Some(s)) = (&args.trace, sink) else {
        return Ok(());
    };
    let doc = formad::trace_json(&s.snapshot());
    if let Err(e) = fs::write(path, doc) {
        eprintln!("cannot write trace to {path}: {e}");
        return Err(ExitCode::from(2));
    }
    Ok(())
}

/// Deterministic fill for a real array parameter: a splitmix64 stream
/// keyed by the seed and the array name, mapped into (-1, 1). Keyed per
/// name so reordering `--set` flags or declarations never changes data.
fn fill_real(name: &str, seed: u64, len: usize) -> Vec<f64> {
    let mut h = 0xcbf2_9ce4_8422_2325_u64; // FNV-1a over the name
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut s = seed ^ h;
    (0..len)
        .map(|_| {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// `formad exec`: bind parameters, run on the chosen backend, print the
/// `intent(out)`/`intent(inout)` results. The two backends are
/// bitwise-identical, so this output can be diffed across them directly.
fn exec_cmd(args: &Args, primal: &formad_ir::Program) -> ExitCode {
    use formad_ir::{Intent, Ty};
    use formad_machine::{lower, run, run_native, Bindings, Machine};

    let mut bind = Bindings::new();
    for (name, raw) in &args.sets {
        let Some(d) = primal.params.iter().find(|d| d.name == *name) else {
            eprintln!("--set: `{name}` is not a parameter of `{}`", primal.name);
            return ExitCode::from(2);
        };
        if d.is_array() {
            eprintln!("--set: `{name}` is an array (only scalars can be set)");
            return ExitCode::from(2);
        }
        match d.ty {
            Ty::Int => match raw.parse::<i64>() {
                Ok(v) => {
                    bind.int_scalars.insert(name.clone(), v);
                }
                Err(_) => {
                    eprintln!("--set: integer `{name}` got non-integer `{raw}`");
                    return ExitCode::from(2);
                }
            },
            Ty::Real => match raw.parse::<f64>() {
                Ok(v) => {
                    bind.real_scalars.insert(name.clone(), v);
                }
                Err(_) => {
                    eprintln!("--set: real `{name}` got non-numeric `{raw}`");
                    return ExitCode::from(2);
                }
            },
        }
    }
    for d in &primal.params {
        if d.is_array() {
            continue;
        }
        match d.ty {
            // Array extents are expressions over the integer parameters,
            // so a missing one cannot be defaulted meaningfully.
            Ty::Int if !bind.int_scalars.contains_key(&d.name) => {
                eprintln!(
                    "integer parameter `{}` needs a value: --set {}=N",
                    d.name, d.name
                );
                return ExitCode::from(2);
            }
            Ty::Real => {
                bind.real_scalars.entry(d.name.clone()).or_insert(0.0);
            }
            _ => {}
        }
    }
    // Lowering evaluates the declared extents against the scalar
    // bindings — reuse it to size the array parameters.
    let lp = match lower(primal, &bind) {
        Ok(lp) => lp,
        Err(e) => {
            eprintln!("{e}");
            return code_for(FormadErrorKind::Validate);
        }
    };
    for d in &primal.params {
        if !d.is_array() {
            continue;
        }
        let len = lp.arrays[lp.array_ids[&d.name] as usize].len;
        match d.ty {
            Ty::Real => {
                bind.real_arrays
                    .insert(d.name.clone(), fill_real(&d.name, args.seed, len));
            }
            // 1, 2, 3, … so integer arrays used as subscripts stay within
            // the 1-based bounds of same-extent arrays.
            Ty::Int => {
                bind.int_arrays
                    .insert(d.name.clone(), (1..=len as i64).collect());
            }
        }
    }

    let t0 = std::time::Instant::now();
    let res = match args.backend.as_str() {
        "native" => run_native(primal, &mut bind, args.threads),
        _ => run(primal, &mut bind, &Machine::with_threads(args.threads)).map(|_| ()),
    };
    let elapsed = t0.elapsed();
    if let Err(e) = res {
        eprintln!("execution failed: {e}");
        return code_for(FormadErrorKind::Validate);
    }
    eprintln!(
        "formad: exec `{}` backend={} threads={} in {:.6}s",
        primal.name,
        args.backend,
        args.threads,
        elapsed.as_secs_f64()
    );
    for d in &primal.params {
        if !matches!(d.intent, Intent::Out | Intent::InOut) {
            continue;
        }
        match (d.is_array(), d.ty) {
            (false, Ty::Real) => {
                println!("{} = {:.17e}", d.name, bind.real_scalars[&d.name]);
            }
            (false, Ty::Int) => println!("{} = {}", d.name, bind.int_scalars[&d.name]),
            (true, Ty::Real) => {
                let a = &bind.real_arrays[&d.name];
                let sum: f64 = a.iter().sum();
                println!("{}: len={} sum={:.17e}", d.name, a.len(), sum);
            }
            (true, Ty::Int) => {
                let a = &bind.int_arrays[&d.name];
                let sum: i64 = a.iter().sum();
                println!("{}: len={} sum={}", d.name, a.len(), sum);
            }
        }
    }
    ExitCode::SUCCESS
}

fn run(args: &Args, primal: &formad_ir::Program) -> ExitCode {
    if std::env::var_os("FORMAD_INTERNAL_PANIC").is_some() {
        panic!("FORMAD_INTERNAL_PANIC test hook tripped");
    }
    if args.command == "exec" {
        return exec_cmd(args, primal);
    }
    let wrt: Vec<&str> = args.wrt.iter().map(|s| s.as_str()).collect();
    let of: Vec<&str> = args.of.iter().map(|s| s.as_str()).collect();
    let mut opts = FormadOptions::new(&wrt, &of);
    opts.region.stride_constraints = args.stride;
    opts.region.use_contexts = args.contexts;
    opts.region.use_increment_detection = args.increment;
    opts.region.prover_timeout = args.prover_timeout;
    opts.region.deadline = args.deadline_ms.map(Deadline::in_ms);
    opts.region.jobs = args.jobs;
    if let Some(core) = args.search_core {
        opts.region.search_core = core;
    }
    if !args.cache {
        opts.region.cache = None;
    }
    // `explain` always needs the event stream; other commands record one
    // only when `--trace` asks for it.
    let sink = (args.trace.is_some() || args.command == "explain").then(TraceSink::new);
    opts.region.trace = sink.clone();
    let core = opts.region.search_core;
    let tool = Formad::new(opts);

    match args.command.as_str() {
        "analyze" | "prove" => {
            let a = match tool.analyze(primal) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return code_for(e.kind);
                }
            };
            cache_diag(&a, args.cache);
            search_diag(&a, core);
            match &args.table1 {
                Some(name) => {
                    println!("{}", formad::table1_header());
                    println!("{}", formad::table1_row(name, &a));
                }
                None => print!("{}", formad::full_report(&primal.name, &a)),
            }
            if let Err(c) = write_trace(args, &sink) {
                return c;
            }
            ExitCode::SUCCESS
        }
        "explain" => {
            let a = match tool.analyze(primal) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return code_for(e.kind);
                }
            };
            cache_diag(&a, args.cache);
            search_diag(&a, core);
            let events = sink.as_ref().map(TraceSink::snapshot).unwrap_or_default();
            print!("{}", formad::explain(&events, args.array.as_deref()));
            if let Err(c) = write_trace(args, &sink) {
                return c;
            }
            ExitCode::SUCCESS
        }
        "adjoint" => {
            let treatment = match args.mode.as_str() {
                "formad" => None,
                "serial" => Some(ParallelTreatment::Serial),
                "atomic" => Some(ParallelTreatment::Uniform(IncMode::Atomic)),
                "reduction" => Some(ParallelTreatment::Uniform(IncMode::Reduction)),
                other => {
                    eprintln!("unknown mode `{other}`");
                    return ExitCode::from(2);
                }
            };
            let adjoint = match treatment {
                None => match tool.differentiate(primal) {
                    Ok(r) => {
                        cache_diag(&r.analysis, args.cache);
                        search_diag(&r.analysis, core);
                        eprint!("{}", formad::full_report(&primal.name, &r.analysis));
                        r.adjoint
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return code_for(e.kind);
                    }
                },
                Some(t) => match tool.adjoint_with(primal, t) {
                    Ok(a) => a,
                    Err(e) => {
                        eprintln!("{e}");
                        return code_for(e.kind);
                    }
                },
            };
            print!("{}", render(&adjoint, &args.emit));
            if let Err(c) = write_trace(args, &sink) {
                return c;
            }
            ExitCode::SUCCESS
        }
        "versions" => {
            let r = match tool.differentiate(primal) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return code_for(e.kind);
                }
            };
            println!("! ===== analysis =====");
            for line in formad::full_report(&primal.name, &r.analysis).lines() {
                println!("! {line}");
            }
            println!("\n! ===== adjoint (FormAD) =====");
            print!("{}", render(&r.adjoint, &args.emit));
            for (label, t) in [
                ("serial", ParallelTreatment::Serial),
                ("atomic", ParallelTreatment::Uniform(IncMode::Atomic)),
                ("reduction", ParallelTreatment::Uniform(IncMode::Reduction)),
            ] {
                println!("\n! ===== adjoint ({label}) =====");
                match tool.adjoint_with(primal, t) {
                    Ok(a) => print!("{}", render(&a, &args.emit)),
                    Err(e) => {
                        eprintln!("{e}");
                        return code_for(e.kind);
                    }
                }
            }
            if let Err(c) = write_trace(args, &sink) {
                return c;
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
