//! Integration tests driving the `formad` binary end to end.

use std::io::Write;
use std::process::Command;

fn formad(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_formad"))
        .args(args)
        .output()
        .expect("run formad");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("formad-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const FIG2_F: &str = r#"
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n + 7)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#;

const FIG2_C: &str = r#"
void fig2(int n, const double x[n + 7], double y[n], const int c[n]) {
  int i;
  #pragma omp parallel for shared(x, y, c)
  for (i = 1; i <= n; i++) {
    y[c[i]] = x[c[i] + 7];
  }
}
"#;

#[test]
fn analyze_fortran_dialect() {
    let f = write_temp("fig2.f90", FIG2_F);
    let (out, _, ok) = formad(&["analyze", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(ok);
    assert!(out.contains("adjoint of `x`: shared"), "{out}");
    assert!(out.contains("adjoint of `y`: shared"), "{out}");
}

#[test]
fn analyze_c_dialect() {
    let f = write_temp("fig2.c", FIG2_C);
    let (out, _, ok) = formad(&["analyze", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(ok);
    assert!(out.contains("shared (no atomics needed)"), "{out}");
}

#[test]
fn adjoint_output_is_the_paper_figure() {
    let f = write_temp("fig2b.f90", FIG2_F);
    let (out, _, ok) = formad(&["adjoint", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(ok);
    assert!(
        out.contains("xb(c(i) + 7) = xb(c(i) + 7) + yb(c(i))"),
        "{out}"
    );
    assert!(out.contains("yb(c(i)) = 0.0"), "{out}");
    assert!(!out.contains("atomic"), "{out}");
}

#[test]
fn adjoint_modes() {
    let f = write_temp("fig2c.f90", FIG2_F);
    let (atomic, _, ok) = formad(&[
        "adjoint",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--mode",
        "atomic",
    ]);
    assert!(ok);
    assert!(atomic.contains("!$omp atomic"), "{atomic}");
    let (serial, _, ok) = formad(&[
        "adjoint",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--mode",
        "serial",
    ]);
    assert!(ok);
    assert!(!serial.contains("!$omp"), "{serial}");
    let (red, _, ok) = formad(&[
        "adjoint",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--mode",
        "reduction",
    ]);
    assert!(ok);
    assert!(red.contains("reduction(+: xb)"), "{red}");
}

#[test]
fn table1_row_output() {
    let f = write_temp("fig2d.f90", FIG2_F);
    let (out, _, ok) = formad(&[
        "analyze",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--table1",
        "fig2",
    ]);
    assert!(ok);
    assert!(out.contains("queries"), "{out}");
    assert!(out.contains("fig2"), "{out}");
}

#[test]
fn versions_prints_all_four() {
    let f = write_temp("fig2e.f90", FIG2_F);
    let (out, _, ok) = formad(&["versions", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(ok);
    for label in ["FormAD", "serial", "atomic", "reduction"] {
        assert!(
            out.contains(&format!("adjoint ({label})")) || out.contains("adjoint (FormAD)"),
            "{label} missing:\n{out}"
        );
    }
}

#[test]
fn emit_c_dialect() {
    let f = write_temp("fig2h.f90", FIG2_F);
    let (out, _, ok) = formad(&[
        "adjoint",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--emit",
        "c",
    ]);
    assert!(ok);
    assert!(out.contains("void fig2_b("), "{out}");
    assert!(out.contains("xb[c[i] + 7] += yb[c[i]];"), "{out}");
    assert!(out.contains("#pragma omp parallel for"), "{out}");
    // Invalid dialect rejected.
    let (_, err, ok) = formad(&[
        "adjoint",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--emit",
        "rust",
    ]);
    assert!(!ok);
    assert!(err.contains("unknown emit dialect"), "{err}");
}

#[test]
fn usage_errors() {
    let (_, err, ok) = formad(&["analyze"]);
    assert!(!ok);
    assert!(err.contains("usage"), "{err}");
    let f = write_temp("fig2f.f90", FIG2_F);
    let (_, err, ok) = formad(&["bogus", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
    let (_, err, ok) = formad(&[
        "analyze",
        "/nonexistent/file.f90",
        "--wrt",
        "x",
        "--of",
        "y",
    ]);
    assert!(!ok);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn parse_errors_reported() {
    let f = write_temp("broken.f90", "subroutine broken(\n");
    let (_, err, ok) = formad(&["analyze", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(!ok);
    assert!(
        err.contains("parse error") || err.contains("expected"),
        "{err}"
    );
}

#[test]
fn ablation_flags_accepted() {
    let f = write_temp("fig2g.f90", FIG2_F);
    let (out, _, ok) = formad(&[
        "analyze",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--no-stride",
        "--no-increment",
    ]);
    assert!(ok);
    assert!(out.contains("shared"), "{out}");
}

// ---------------------------------------------------------------------
// Exit-code contract and prover resource flags.
// ---------------------------------------------------------------------

fn formad_code(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_formad"))
        .args(args)
        .output()
        .expect("run formad")
        .status
        .code()
        .expect("exit code")
}

#[test]
fn distinct_exit_codes_per_error_kind() {
    // Usage error → 2.
    assert_eq!(formad_code(&["analyze"]), 2);
    // Unreadable file → 2 (IO, not a pipeline kind).
    assert_eq!(
        formad_code(&[
            "analyze",
            "/nonexistent/file.f90",
            "--wrt",
            "x",
            "--of",
            "y"
        ]),
        2
    );
    // Parse failure → 3.
    let broken = write_temp("code3.f90", "subroutine broken(\n");
    assert_eq!(
        formad_code(&[
            "analyze",
            broken.to_str().unwrap(),
            "--wrt",
            "x",
            "--of",
            "y"
        ]),
        3
    );
    // Validation failure → 4 (use of an undeclared variable parses fine
    // but fails semantic checks).
    let invalid = write_temp(
        "code4.f90",
        "subroutine t(n)\n  integer, intent(in) :: n\n  integer :: i\n  \
         do i = 1, n\n    i = zzz\n  end do\nend subroutine\n",
    );
    assert_eq!(
        formad_code(&[
            "analyze",
            invalid.to_str().unwrap(),
            "--wrt",
            "n",
            "--of",
            "n"
        ]),
        4
    );
}

#[test]
fn prover_timeout_flag_accepted_and_validated() {
    let f = write_temp("timeout.f90", FIG2_F);
    // A generous timeout changes nothing on this easy problem.
    let (out, _, ok) = formad(&[
        "analyze",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--prover-timeout-ms",
        "5000",
    ]);
    assert!(ok);
    assert!(out.contains("shared (no atomics needed)"), "{out}");
    // Garbage value is a usage error, not a panic.
    let (_, err, ok) = formad(&[
        "analyze",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--prover-timeout-ms",
        "soon",
    ]);
    assert!(!ok);
    assert!(
        err.contains("--prover-timeout-ms expects an integer"),
        "{err}"
    );
}

/// Drop the wall-clock suffix from region header lines (`… N queries,
/// 0.002s`) so reports can be compared byte-for-byte across runs.
fn strip_times(report: &str) -> String {
    report
        .lines()
        .map(|l| match l.split_once(" queries, ") {
            Some((head, _)) => format!("{head} queries"),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn jobs_flag_keeps_reports_identical() {
    let f = write_temp("jobs.f90", FIG2_F);
    let base = &["analyze", "--wrt", "x", "--of", "y"];
    let run = |extra: &[&str]| {
        let mut argv = vec![
            base[0],
            f.to_str().unwrap(),
            base[1],
            base[2],
            base[3],
            base[4],
        ];
        argv.extend_from_slice(extra);
        let (out, err, ok) = formad(&argv);
        assert!(ok, "{err}");
        strip_times(&out)
    };
    let sequential = run(&["--jobs", "1"]);
    let parallel = run(&["--jobs", "4"]);
    let auto = run(&[]);
    assert_eq!(sequential, parallel, "reports must not depend on --jobs");
    assert_eq!(sequential, auto);
    assert!(sequential.contains("shared (no atomics needed)"));
    // Garbage value is a usage error, not a panic.
    let (_, err, ok) = formad(&[
        "analyze",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--jobs",
        "many",
    ]);
    assert!(!ok);
    assert!(err.contains("--jobs expects an integer"), "{err}");
}

#[test]
fn no_cache_flag_keeps_verdicts_and_reports_stats() {
    let f = write_temp("nocache.f90", FIG2_F);
    let (cached_out, cached_err, ok) =
        formad(&["analyze", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(ok);
    assert!(
        cached_err.contains("prover cache:"),
        "cache diagnostic missing: {cached_err}"
    );
    let (plain_out, plain_err, ok) = formad(&[
        "analyze",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--no-cache",
    ]);
    assert!(ok);
    assert!(plain_err.contains("prover cache disabled"), "{plain_err}");
    // The cache is a pure accelerator: verdicts (and the whole report)
    // are unaffected by switching it off.
    assert_eq!(strip_times(&cached_out), strip_times(&plain_out));
}

#[test]
fn prove_is_an_alias_for_analyze() {
    let f = write_temp("prove.f90", FIG2_F);
    let (prove_out, _, ok) = formad(&["prove", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(ok);
    let (analyze_out, _, ok) = formad(&["analyze", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(ok);
    assert_eq!(strip_times(&prove_out), strip_times(&analyze_out));
}

#[test]
fn ad_failure_exits_5() {
    let f = write_temp("code5.f90", FIG2_F);
    assert_eq!(
        formad_code(&[
            "adjoint",
            f.to_str().unwrap(),
            "--wrt",
            "nosuch",
            "--of",
            "y"
        ]),
        5
    );
}

#[test]
fn escaped_prover_panic_exits_6() {
    let f = write_temp("code6.f90", FIG2_F);
    let out = Command::new(env!("CARGO_BIN_EXE_formad"))
        .args(["analyze", f.to_str().unwrap(), "--wrt", "x", "--of", "y"])
        .env("FORMAD_INTERNAL_PANIC", "1")
        .output()
        .expect("run formad");
    assert_eq!(out.status.code(), Some(6));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("internal panic escaped recovery"), "{err}");
}

#[test]
fn expired_deadline_exits_7() {
    let f = write_temp("code7.f90", FIG2_F);
    let out = Command::new(env!("CARGO_BIN_EXE_formad"))
        .args([
            "analyze",
            f.to_str().unwrap(),
            "--wrt",
            "x",
            "--of",
            "y",
            "--deadline-ms",
            "0",
        ])
        .output()
        .expect("run formad");
    assert_eq!(out.status.code(), Some(7));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("deadline"), "{err}");
    // Garbage value is a usage error, not a panic.
    let (_, err, ok) = formad(&[
        "analyze",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--deadline-ms",
        "later",
    ]);
    assert!(!ok);
    assert!(err.contains("--deadline-ms expects an integer"), "{err}");
}

#[test]
fn trace_file_is_written_and_schema_valid() {
    let f = write_temp("traced.f90", FIG2_F);
    let dir = std::env::temp_dir().join("formad-cli-tests");
    let trace1 = dir.join("trace_j1.json");
    let trace4 = dir.join("trace_j4.json");
    for (path, jobs) in [(&trace1, "1"), (&trace4, "4")] {
        let (_, err, ok) = formad(&[
            "analyze",
            f.to_str().unwrap(),
            "--wrt",
            "x",
            "--of",
            "y",
            "--jobs",
            jobs,
            "--trace",
            path.to_str().unwrap(),
        ]);
        assert!(ok, "{err}");
    }
    let doc1 = std::fs::read_to_string(&trace1).unwrap();
    let doc4 = std::fs::read_to_string(&trace4).unwrap();
    let summary = formad::validate_trace(&doc1).expect("schema-valid trace");
    assert!(summary.queries > 0);
    assert!(summary
        .decisions
        .iter()
        .any(|d| d.array == "x" && d.decision == "shared"));
    formad::validate_trace(&doc4).expect("schema-valid trace");
    // The deterministic section must not depend on --jobs: compare the
    // documents with their volatile `perf` sections dropped.
    let events_only = |doc: &str| doc.split("\"perf\"").next().unwrap().to_string();
    assert_eq!(events_only(&doc1), events_only(&doc4));
}

const AXPY_F: &str = r#"
subroutine axpy(n, a, x, y)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine
"#;

#[test]
fn exec_runs_both_backends_with_identical_output() {
    let f = write_temp("axpy.f90", AXPY_F);
    let run_with = |backend: &str, threads: &str| {
        let (out, err, ok) = formad(&[
            "exec",
            f.to_str().unwrap(),
            "--set",
            "n=64,a=0.5",
            "--backend",
            backend,
            "--threads",
            threads,
        ]);
        assert!(ok, "{err}");
        assert!(err.contains(&format!("backend={backend}")), "{err}");
        out
    };
    let sim = run_with("sim", "1");
    assert!(sim.contains("y: len=64 sum="), "{sim}");
    // The bytecode executor is bitwise-identical to the interpreter, so
    // the printed sums match exactly — at any thread count.
    assert_eq!(sim, run_with("native", "1"));
    assert_eq!(sim, run_with("native", "4"));
    assert_eq!(sim, run_with("sim", "4"));
}

#[test]
fn exec_honors_the_shared_deadline_story() {
    // `exec` shares the analysis verbs' deadline contract: a pre-expired
    // global deadline is a hard exit-7 failure with a diagnostic, not a
    // silent success.
    let f = write_temp("axpy_dl.f90", AXPY_F);
    let out = Command::new(env!("CARGO_BIN_EXE_formad"))
        .args([
            "exec",
            f.to_str().unwrap(),
            "--set",
            "n=16,a=0.5",
            "--deadline-ms",
            "0",
        ])
        .output()
        .expect("run formad");
    assert_eq!(out.status.code(), Some(7));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("deadline"), "{err}");
    // A generous deadline leaves the run untouched.
    let (out, err, ok) = formad(&[
        "exec",
        f.to_str().unwrap(),
        "--set",
        "n=16,a=0.5",
        "--deadline-ms",
        "60000",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("y: len=16 sum="), "{out}");
}

#[test]
fn exec_runs_generated_adjoints() {
    // Close the loop: differentiate, write the adjoint out, execute it
    // natively. The adjoint of axpy seeds xb += a * yb.
    let f = write_temp("axpy2.f90", AXPY_F);
    let (adj, _, ok) = formad(&["adjoint", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(ok);
    let g = write_temp("axpy_b.f90", &adj);
    let (out, err, ok) = formad(&[
        "exec",
        g.to_str().unwrap(),
        "--set",
        "n=32,a=2.0",
        "--backend",
        "native",
        "--threads",
        "2",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("xb: len=32 sum="), "{out}");
}

#[test]
fn exec_usage_errors() {
    let f = write_temp("axpy3.f90", AXPY_F);
    // Integer parameters cannot be defaulted (extents depend on them).
    let (_, err, ok) = formad(&["exec", f.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("integer parameter `n` needs a value"), "{err}");
    // Unknown backend is a usage error.
    assert_eq!(
        formad_code(&[
            "exec",
            f.to_str().unwrap(),
            "--set",
            "n=8",
            "--backend",
            "cuda"
        ]),
        2
    );
    // Setting a non-parameter is a usage error.
    let (_, err, ok) = formad(&["exec", f.to_str().unwrap(), "--set", "n=8,zz=1"]);
    assert!(!ok);
    assert!(err.contains("`zz` is not a parameter"), "{err}");
}

#[test]
fn exec_aot_backend_matches_sim_and_compile_prewarms() {
    let f = write_temp("axpy_aot.f90", AXPY_F);
    // Keep this test's kernel cache away from the developer's real one.
    let dir = std::env::temp_dir().join(format!("formad-cli-aot-{}", std::process::id()));
    let run_in = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_formad"))
            .args(args)
            .env("FORMAD_AOT_DIR", &dir)
            .output()
            .expect("run formad");
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
            out.status.code(),
        )
    };
    // Prebuild: `formad compile` prints the artifact paths.
    let (out, err, code) = run_in(&["compile", f.to_str().unwrap(), "--set", "n=48,a=0.5"]);
    assert_eq!(code, Some(0), "{err}");
    assert!(out.contains("regions: 1"), "{out}");
    assert!(out.contains("cdylib:"), "{out}");
    assert!(out.contains("source:"), "{out}");
    let so = out
        .lines()
        .find_map(|l| l.strip_prefix("cdylib:"))
        .expect("cdylib line")
        .trim()
        .to_string();
    assert!(std::path::Path::new(&so).exists(), "missing artifact {so}");
    // The warmed cache serves `exec --backend aot`, bitwise equal to sim.
    let exec = |backend: &str| {
        let (out, err, code) = run_in(&[
            "exec",
            f.to_str().unwrap(),
            "--set",
            "n=48,a=0.5",
            "--backend",
            backend,
            "--threads",
            "2",
        ]);
        assert_eq!(code, Some(0), "{err}");
        assert!(err.contains(&format!("backend={backend}")), "{err}");
        (out, err)
    };
    let (sim, _) = exec("sim");
    let (aot, aot_err) = exec("aot");
    assert_eq!(sim, aot);
    assert!(
        !aot_err.contains("fell back"),
        "warmed cache must not fall back: {aot_err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exec_aot_falls_back_when_the_toolchain_is_broken() {
    // Degradation, not errors: with no usable `rustc` and a cold cache,
    // `exec --backend aot` lands on the bytecode backend, succeeds, and
    // prints the same outputs — plus a stderr note naming the reason.
    let f = write_temp("axpy_aotfail.f90", AXPY_F);
    let dir = std::env::temp_dir().join(format!("formad-cli-aotfail-{}", std::process::id()));
    let args = [
        "exec",
        f.to_str().unwrap(),
        "--set",
        "n=48,a=0.5",
        "--backend",
        "aot",
    ];
    let out = Command::new(env!("CARGO_BIN_EXE_formad"))
        .args(args)
        .env("FORMAD_AOT_DIR", &dir)
        .env("FORMAD_AOT_RUSTC", "/nonexistent/formad-test-rustc")
        .output()
        .expect("run formad");
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{err}");
    assert!(err.contains("fell back to native bytecode"), "{err}");
    let (sim, _, ok) = formad(&[
        "exec",
        f.to_str().unwrap(),
        "--set",
        "n=48,a=0.5",
        "--backend",
        "sim",
    ]);
    assert!(ok);
    assert_eq!(sim, String::from_utf8_lossy(&out.stdout));
    let _ = std::fs::remove_dir_all(&dir);

    // `formad compile` has nothing to degrade to: same broken toolchain
    // is a hard usage/IO error (exit 2) with the compiler's diagnostic.
    let out = Command::new(env!("CARGO_BIN_EXE_formad"))
        .args(["compile", f.to_str().unwrap(), "--set", "n=48,a=0.5"])
        .env("FORMAD_AOT_DIR", &dir)
        .env("FORMAD_AOT_RUSTC", "/nonexistent/formad-test-rustc")
        .output()
        .expect("run formad");
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{err}");
    assert!(err.contains("failed to spawn"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_narrates_decisions() {
    let f = write_temp("explain.f90", FIG2_F);
    let (out, _, ok) = formad(&["explain", f.to_str().unwrap(), "--wrt", "x", "--of", "y"]);
    assert!(ok);
    assert!(out.contains("proof narrative for `x`"), "{out}");
    assert!(out.contains("proof narrative for `y`"), "{out}");
    assert!(out.contains("shared (no atomics needed)"), "{out}");
    // Narrowed to one array: the other's narrative disappears.
    let (only_x, _, ok) = formad(&[
        "explain",
        f.to_str().unwrap(),
        "x",
        "--wrt",
        "x",
        "--of",
        "y",
    ]);
    assert!(ok);
    assert!(only_x.contains("proof narrative for `x`"), "{only_x}");
    assert!(!only_x.contains("proof narrative for `y`"), "{only_x}");
    // An unknown array is reported, not silently empty.
    let (missing, _, ok) = formad(&[
        "explain",
        f.to_str().unwrap(),
        "zz",
        "--wrt",
        "x",
        "--of",
        "y",
    ]);
    assert!(ok);
    assert!(missing.contains("no decision recorded"), "{missing}");
}

#[test]
fn zero_timeout_degrades_but_stays_correct() {
    // With a 0ms allowance every query times out; the analysis must still
    // complete, keeping all safeguards, and the adjoint must still be
    // generated (with atomics) — degradation, not failure.
    let f = write_temp("timeout0.f90", FIG2_F);
    let (out, err, ok) = formad(&[
        "adjoint",
        f.to_str().unwrap(),
        "--wrt",
        "x",
        "--of",
        "y",
        "--prover-timeout-ms",
        "0",
    ]);
    assert!(ok, "degradation must not be an error: {err}");
    assert!(out.contains("xb(c(i) + 7)"), "{out}");
    assert!(
        out.contains("atomic"),
        "timed-out analysis must keep atomics: {out}"
    );
    assert!(
        err.contains("timed-out") || err.contains("guarded"),
        "{err}"
    );
}

#[test]
fn serve_starts_answers_and_shuts_down_over_the_wire() {
    use std::io::{BufRead, BufReader, Read};
    use std::net::TcpStream;

    let mut child = Command::new(env!("CARGO_BIN_EXE_formad"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn formad serve");
    // The bound address is the first stdout line.
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner
        .rsplit(' ')
        .next()
        .unwrap_or_else(|| panic!("no address in banner `{banner}`"))
        .to_string();

    let post = |path: &str, body: &str| -> (u16, String) {
        let mut s = TcpStream::connect(&addr).expect("connect to daemon");
        s.write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        let status = text.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    };

    let program = FIG2_F.replace('\n', "\\n").replace('"', "\\\"");
    let (status, body) = post(
        "/v1/prove",
        &format!(r#"{{"program":"{program}","wrt":"x","of":"y"}}"#),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\":true"), "{body}");
    assert!(body.contains("fig2"), "{body}");

    let (status, _) = post("/v1/shutdown", "{}");
    assert_eq!(status, 200);
    let out = child.wait_with_output().expect("daemon exit");
    assert!(
        out.status.success(),
        "daemon exited nonzero: {:?}",
        out.status
    );
}

// ---- zero-parallel-region AOT path ----

const SEQ_F: &str = r#"
subroutine seq(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    y(i) = y(i) + 2.0 * x(i)
  end do
end subroutine
"#;

/// Run the binary with `FORMAD_AOT_DIR` pointed at a fresh directory so
/// the test can assert no kernel artifacts were produced.
fn formad_with_aot_dir(args: &[&str], dir: &std::path::Path) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_formad"))
        .args(args)
        .env("FORMAD_AOT_DIR", dir)
        .output()
        .expect("run formad");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn exec_aot_without_parallel_regions_is_clean() {
    let f = write_temp("seq_aot.f90", SEQ_F);
    let dir = std::env::temp_dir().join(format!("formad-aot-none-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (out, err, ok) = formad_with_aot_dir(
        &[
            "exec",
            f.to_str().unwrap(),
            "--backend",
            "aot",
            "--set",
            "n=6",
        ],
        &dir,
    );
    assert!(ok, "{err}");
    assert!(
        !err.contains("fell back"),
        "no fallback note for a program with nothing to compile: {err}"
    );
    // The rustc pipeline never ran: no kernel source/cdylib artifacts.
    let artifacts = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(artifacts, 0, "no AOT artifacts for a region-free program");
    // Bitwise-identical to the sim backend, as for every exec path.
    let (sim, _, sim_ok) = formad(&["exec", f.to_str().unwrap(), "--set", "n=6"]);
    assert!(sim_ok);
    assert_eq!(out, sim);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compile_without_parallel_regions_is_clean() {
    let f = write_temp("seq_compile.f90", SEQ_F);
    let dir = std::env::temp_dir().join(format!("formad-aot-none-c-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (out, err, ok) =
        formad_with_aot_dir(&["compile", f.to_str().unwrap(), "--set", "n=6"], &dir);
    assert!(ok, "{err}");
    assert!(out.contains("regions: 0"), "{out}");
    assert!(out.contains("nothing to compile"), "{out}");
    let artifacts = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(artifacts, 0, "no AOT artifacts for a region-free program");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- formad fuzz ----

#[test]
fn fuzz_smoke_is_deterministic_and_clean() {
    let args = ["fuzz", "--seed", "42", "--cases", "8", "--smoke"];
    let (a, a_err, ok) = formad(&args);
    assert!(ok, "{a}\n{a_err}");
    assert!(a.contains("fuzz: 8 cases, 0 divergences"), "{a}");
    let (b, _, ok2) = formad(&args);
    assert!(ok2);
    assert_eq!(a, b, "same seed and flags must be byte-identical on stdout");
}

#[test]
fn fuzz_chaos_legacy_diverges_and_reproducers_replay() {
    let corpus = std::env::temp_dir().join(format!("formad-fuzz-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&corpus);
    let (out, err, ok) = formad(&[
        "fuzz",
        "--seed",
        "42",
        "--cases",
        "2",
        "--smoke",
        "--chaos-legacy",
        "1000",
        "--corpus",
        corpus.to_str().unwrap(),
    ]);
    assert!(!ok, "poisoned oracle must exit nonzero:\n{out}\n{err}");
    assert!(out.contains("DIVERGENCE [cross-core]"), "{out}");
    let file = std::fs::read_dir(&corpus)
        .expect("corpus written")
        .next()
        .expect("one reproducer")
        .unwrap()
        .path();
    let (rout, _, rok) = formad(&["fuzz", "--repro", file.to_str().unwrap()]);
    assert!(!rok, "replayed reproducer still diverges");
    assert!(rout.contains("reproduces: [cross-core]"), "{rout}");
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn fuzz_rejects_unknown_options() {
    let (_, err, ok) = formad(&["fuzz", "--bogus"]);
    assert!(!ok);
    assert!(err.contains("unknown fuzz option"), "{err}");
}
