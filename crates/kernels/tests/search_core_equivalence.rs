//! Cross-core equivalence contract: the CDCL(T) search engine is a pure
//! accelerator over the legacy enumerate-and-split core. On the whole
//! Table-1 suite, every report byte (wall-clock zeroed), every proof
//! narrative, and every deterministic trace section must be identical
//! under `--search-core cdcl` and `--search-core legacy`, for any job
//! count and cache setting — while the CDCL core does strictly less
//! linear-arithmetic work.

use std::time::Duration;

use formad::{
    deterministic_json, explain, region_report, Formad, FormadAnalysis, FormadOptions, SearchCore,
    TraceSink,
};
use formad_ir::Program;
use formad_kernels::{lbm, GfmcCase, GreenGaussCase, StencilCase};
use formad_smt::ProofCache;

/// The paper's Table-1 kernel suite at analysis-relevant sizes.
fn suite() -> Vec<(&'static str, Program, Vec<&'static str>, Vec<&'static str>)> {
    let gf = GfmcCase::new(8, 1);
    vec![
        (
            "stencil1",
            StencilCase::small(32, 1).ir(),
            StencilCase::independents().to_vec(),
            StencilCase::dependents().to_vec(),
        ),
        (
            "stencil8",
            StencilCase::large(64, 1).ir(),
            StencilCase::independents().to_vec(),
            StencilCase::dependents().to_vec(),
        ),
        (
            "gfmc",
            gf.ir(),
            GfmcCase::independents().to_vec(),
            GfmcCase::dependents().to_vec(),
        ),
        (
            "gfmc*",
            gf.ir_star(),
            GfmcCase::independents().to_vec(),
            GfmcCase::dependents().to_vec(),
        ),
        (
            "lbm",
            lbm::lbm_ir(),
            lbm::independents().to_vec(),
            lbm::dependents().to_vec(),
        ),
        (
            "greengauss",
            GreenGaussCase::linear(24, 1).ir(),
            GreenGaussCase::independents().to_vec(),
            GreenGaussCase::dependents().to_vec(),
        ),
    ]
}

/// Full textual fingerprint of an analysis: every region report with the
/// wall-clock (the only nondeterministic field) zeroed.
fn fingerprint(a: &mut FormadAnalysis) -> String {
    let mut s = String::new();
    for r in &mut a.regions {
        r.time = Duration::ZERO;
        s.push_str(&region_report(r));
        s.push('\n');
    }
    s
}

fn analyze_with(
    program: &Program,
    indep: &[&str],
    dep: &[&str],
    configure: impl FnOnce(&mut FormadOptions),
) -> FormadAnalysis {
    let mut opts = FormadOptions::new(indep, dep);
    configure(&mut opts);
    Formad::new(opts).analyze(program).expect("analysis")
}

#[test]
fn reports_identical_across_cores_jobs_and_cache() {
    for (name, program, indep, dep) in suite() {
        let run = |core: SearchCore, jobs: usize, cache: bool| {
            let mut a = analyze_with(&program, &indep, &dep, |o| {
                o.region.search_core = core;
                o.region.jobs = jobs;
                o.region.cache = cache.then(ProofCache::new);
            });
            fingerprint(&mut a)
        };
        let reference = run(SearchCore::Cdcl, 1, false);
        for jobs in [1, 4] {
            for cache in [false, true] {
                for core in [SearchCore::Cdcl, SearchCore::Legacy] {
                    assert_eq!(
                        reference,
                        run(core, jobs, cache),
                        "{name}: report differs under core={core:?} jobs={jobs} cache={cache}"
                    );
                }
            }
        }
    }
}

#[test]
fn explain_and_trace_identical_across_cores() {
    for (name, program, indep, dep) in suite() {
        let run = |core: SearchCore| {
            let sink = TraceSink::new();
            let _ = analyze_with(&program, &indep, &dep, |o| {
                o.region.search_core = core;
                o.region.trace = Some(sink.clone());
            });
            let events = sink.snapshot();
            (explain(&events, None), deterministic_json(&events))
        };
        let (cdcl_explain, cdcl_trace) = run(SearchCore::Cdcl);
        let (legacy_explain, legacy_trace) = run(SearchCore::Legacy);
        assert_eq!(
            cdcl_explain, legacy_explain,
            "{name}: explain narrative differs between search cores"
        );
        assert_eq!(
            cdcl_trace, legacy_trace,
            "{name}: deterministic trace section differs between search cores"
        );
    }
}

#[test]
fn cdcl_does_less_linear_arithmetic_work() {
    let mut cdcl_lia = 0u64;
    let mut legacy_lia = 0u64;
    for (_, program, indep, dep) in suite() {
        let run = |core: SearchCore| {
            analyze_with(&program, &indep, &dep, |o| {
                o.region.search_core = core;
                o.region.cache = None;
            })
            .stats
            .lia_calls
        };
        cdcl_lia += run(SearchCore::Cdcl);
        legacy_lia += run(SearchCore::Legacy);
    }
    assert!(
        cdcl_lia < legacy_lia,
        "cdcl made {cdcl_lia} lia calls vs legacy {legacy_lia}; the new core must be cheaper"
    );
}
