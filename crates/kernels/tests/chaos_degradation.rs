//! Fault-injection e2e suite: the pipeline under a misbehaving prover.
//!
//! A `ChaosSolver` (seeded, deterministic) makes prover `check()` calls
//! panic or answer `Unknown` at hostile rates. The degradation contract
//! says the pipeline must absorb every such fault:
//!
//! - no panic ever escapes `Formad::analyze`/`differentiate`;
//! - decisions only ever degrade (an array `Shared` under chaos is also
//!   `Shared` in the fault-free baseline — faults never *remove*
//!   safeguards);
//! - the generated adjoint still passes finite-difference dot-product
//!   checks at every thread count — chaos costs speed (extra atomics),
//!   never correctness.

use std::time::Duration;

use formad::{Decision, Formad, FormadAnalysis, FormadOptions};
use formad_kernels::{GfmcCase, GreenGaussCase, StencilCase};
use formad_machine::{dot_product_test, Bindings, Machine};
use formad_smt::ChaosConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: [u64; 3] = [1, 2, 17];

fn rand_vec(seed: u64, n: usize) -> Vec<f64> {
    let mut r = StdRng::seed_from_u64(seed);
    (0..n).map(|_| r.gen_range(-1.0..1.0)).collect()
}

/// Hostile but survivable fault rates: 20% panics, 25% unknowns. The
/// proofs run on a 4-worker pool so every degradation path is exercised
/// under parallelism too — per-task fault-stream salting keeps the runs
/// reproducible regardless of scheduling.
fn chaos_options(independents: &[&str], dependents: &[&str], seed: u64) -> FormadOptions {
    let mut o = FormadOptions::new(independents, dependents);
    o.region.jobs = 4;
    o.region.chaos = Some(ChaosConfig {
        seed,
        panic_per_mille: 200,
        unknown_per_mille: 250,
        delay_per_mille: 0,
        delay: Duration::ZERO,
    });
    o
}

/// Every array `Shared` under chaos must be `Shared` in the baseline:
/// faults may only push decisions *toward* safeguards.
fn assert_degradation_only(baseline: &FormadAnalysis, chaotic: &FormadAnalysis, seed: u64) {
    assert_eq!(baseline.regions.len(), chaotic.regions.len());
    for (b, c) in baseline.regions.iter().zip(&chaotic.regions) {
        for (arr, d) in &c.decisions {
            if matches!(d, Decision::Shared) {
                assert_eq!(
                    b.decisions.get(arr),
                    Some(&Decision::Shared),
                    "seed {seed}: chaos promoted `{arr}` to Shared in region {}",
                    c.region
                );
            }
        }
    }
}

/// Run the full differentiate-under-chaos pipeline and finite-difference
/// check the resulting adjoint at 1 and 4 threads.
fn check_chaotic_adjoint(
    primal: &formad_ir::Program,
    opts: FormadOptions,
    base: &Bindings,
    independents: &[(&str, Vec<f64>)],
    dependents: &[(&str, Vec<f64>)],
    tol: f64,
    seed: u64,
) -> FormadAnalysis {
    let result = Formad::new(opts)
        .differentiate(primal)
        .unwrap_or_else(|e| panic!("seed {seed}: chaos must degrade, not fail: {e}"));
    for threads in [1usize, 4] {
        let t = dot_product_test(
            primal,
            &result.adjoint,
            base,
            independents,
            dependents,
            &Machine::with_threads(threads),
            1e-6,
            "b",
        )
        .unwrap_or_else(|e| panic!("seed {seed} T={threads}: {e}"));
        assert!(
            t.passes(tol),
            "seed {seed} T={threads}: fd={} adj={} rel={}",
            t.fd_value,
            t.adjoint_value,
            t.rel_error
        );
    }
    result.analysis
}

#[test]
fn stencil_chaos_degrades_never_miscompiles() {
    let c = StencilCase::small(32, 2);
    let primal = c.ir();
    let base = c.bindings(11);
    let baseline = Formad::new(FormadOptions::new(
        StencilCase::independents(),
        StencilCase::dependents(),
    ))
    .analyze(&primal)
    .unwrap();
    for seed in SEEDS {
        let opts = chaos_options(StencilCase::independents(), StencilCase::dependents(), seed);
        let analysis = check_chaotic_adjoint(
            &primal,
            opts,
            &base,
            &[("uold", rand_vec(21, 32))],
            &[("unew", rand_vec(22, 32))],
            1e-6,
            seed,
        );
        assert_degradation_only(&baseline, &analysis, seed);
    }
}

#[test]
fn gfmc_chaos_adjoints_stay_correct() {
    let c = GfmcCase::new(8, 1);
    let primal = c.ir();
    let base = c.bindings_split(17);
    let ns2 = c.ns * c.ns;
    let baseline = Formad::new(FormadOptions::new(
        GfmcCase::independents(),
        GfmcCase::dependents(),
    ))
    .analyze(&primal)
    .unwrap();
    for seed in SEEDS {
        let opts = chaos_options(GfmcCase::independents(), GfmcCase::dependents(), seed);
        let analysis = check_chaotic_adjoint(
            &primal,
            opts,
            &base,
            &[("cr", rand_vec(31, ns2)), ("cl", rand_vec(32, ns2))],
            &[("cr", rand_vec(33, ns2)), ("cl", rand_vec(34, ns2))],
            1e-4, // nonlinear tanh: finite differences are less exact
            seed,
        );
        assert_degradation_only(&baseline, &analysis, seed);
    }
}

#[test]
fn green_gauss_chaos_adjoints_stay_correct() {
    let c = GreenGaussCase::linear(24, 2);
    let primal = c.ir();
    let base = c.bindings(23);
    let baseline = Formad::new(FormadOptions::new(
        GreenGaussCase::independents(),
        GreenGaussCase::dependents(),
    ))
    .analyze(&primal)
    .unwrap();
    for seed in SEEDS {
        let opts = chaos_options(
            GreenGaussCase::independents(),
            GreenGaussCase::dependents(),
            seed,
        );
        let analysis = check_chaotic_adjoint(
            &primal,
            opts,
            &base,
            &[("dv", rand_vec(51, 24))],
            &[("grad", rand_vec(52, 24))],
            1e-6,
            seed,
        );
        assert_degradation_only(&baseline, &analysis, seed);
    }
}

#[test]
fn chaos_faults_actually_fire() {
    // Guard against a vacuous suite: across the seeds, injected faults
    // must actually have been absorbed (recovered panics or unknowns).
    let c = StencilCase::small(32, 2);
    let primal = c.ir();
    let mut recovered = 0u64;
    let mut unknowns = 0u64;
    for seed in SEEDS {
        let opts = chaos_options(StencilCase::independents(), StencilCase::dependents(), seed);
        let a = Formad::new(opts).analyze(&primal).unwrap();
        recovered += a.recovered_panics();
        unknowns += a.stats.unknowns;
    }
    assert!(
        recovered + unknowns > 0,
        "no chaos fault fired across seeds {SEEDS:?} — suite is vacuous"
    );
}

#[test]
fn total_prover_failure_still_produces_correct_adjoint() {
    // The extreme rung of the ladder: *every* prover call panics. All
    // proofs fail, every attempt of the retry ladder is consumed, and the
    // analysis must settle on all-atomics — which is still a correct
    // adjoint, just a slower one.
    let c = StencilCase::small(32, 2);
    let primal = c.ir();
    let base = c.bindings(11);
    let mut opts = FormadOptions::new(StencilCase::independents(), StencilCase::dependents());
    opts.region.jobs = 4;
    opts.region.chaos = Some(ChaosConfig {
        seed: 3,
        panic_per_mille: 1000,
        unknown_per_mille: 0,
        delay_per_mille: 0,
        delay: Duration::ZERO,
    });
    let analysis = check_chaotic_adjoint(
        &primal,
        opts,
        &base,
        &[("uold", rand_vec(21, 32))],
        &[("unew", rand_vec(22, 32))],
        1e-6,
        3,
    );
    assert!(analysis.recovered_panics() > 0, "no panic was recovered");
    assert!(
        analysis.degraded(),
        "an all-panic prover must show as degraded"
    );
    for r in &analysis.regions {
        for (arr, d) in &r.decisions {
            assert!(
                matches!(d, Decision::Guarded(_)),
                "`{arr}` decided {d:?} with a dead prover"
            );
        }
    }
}
