//! Tangent-mode finite-difference cross-check on the benchmark kernels:
//! forward mode computes `ẏ = J·ẋ`, so `⟨w, ẏ⟩` must agree with the
//! central-difference approximation of `⟨w, J·ẋ⟩` on the primal. This is
//! independent of the adjoint pipeline and so cross-validates both the
//! tangent transformation and the finite-difference harness the adjoint
//! tests rely on.

use formad_ad::{differentiate_tangent, AdjointOptions, IncMode, ParallelTreatment};
use formad_kernels::{GfmcCase, GreenGaussCase};
use formad_machine::{tangent_dot_test, Bindings, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_vec(seed: u64, n: usize) -> Vec<f64> {
    let mut r = StdRng::seed_from_u64(seed);
    (0..n).map(|_| r.gen_range(-1.0..1.0)).collect()
}

fn check_tangent(
    primal: &formad_ir::Program,
    base: &Bindings,
    independents: &[(&str, Vec<f64>)],
    dependents: &[(&str, Vec<f64>)],
    tol: f64,
) {
    let indep: Vec<&str> = independents.iter().map(|(n, _)| *n).collect();
    let dep: Vec<&str> = dependents.iter().map(|(n, _)| *n).collect();
    // Tangent mode needs no race-safety treatment; the option is ignored.
    let opts = AdjointOptions::new(&indep, &dep, ParallelTreatment::Uniform(IncMode::Plain));
    let tangent = differentiate_tangent(primal, &opts).unwrap();
    for threads in [1usize, 4] {
        let t = tangent_dot_test(
            primal,
            &tangent,
            base,
            independents,
            dependents,
            &Machine::with_threads(threads),
            1e-6,
            "d",
        )
        .unwrap_or_else(|e| panic!("T={threads}: {e}"));
        assert!(
            t.passes(tol),
            "T={threads}: fd={} tangent={} rel={}",
            t.fd_value,
            t.adjoint_value,
            t.rel_error
        );
    }
}

#[test]
fn gfmc_tangent_matches_fd() {
    let c = GfmcCase::new(8, 1);
    let base = c.bindings_split(17);
    let ns2 = c.ns * c.ns;
    check_tangent(
        &c.ir(),
        &base,
        &[("cr", rand_vec(61, ns2)), ("cl", rand_vec(62, ns2))],
        &[("cr", rand_vec(63, ns2)), ("cl", rand_vec(64, ns2))],
        1e-4, // nonlinear tanh: finite differences are less exact
    );
}

#[test]
fn gfmc_star_tangent_matches_fd() {
    let c = GfmcCase::new(8, 1);
    let base = c.bindings(19);
    let ns2 = c.ns * c.ns;
    check_tangent(
        &c.ir_star(),
        &base,
        &[("cr", rand_vec(71, ns2)), ("cl", rand_vec(72, ns2))],
        &[("cr", rand_vec(73, ns2)), ("cl", rand_vec(74, ns2))],
        1e-4,
    );
}

#[test]
fn green_gauss_tangent_matches_fd() {
    let c = GreenGaussCase::linear(24, 2);
    let base = c.bindings(23);
    check_tangent(
        &c.ir(),
        &base,
        &[("dv", rand_vec(81, 24))],
        &[("grad", rand_vec(82, 24))],
        1e-6,
    );
}
