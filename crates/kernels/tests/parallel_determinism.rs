//! Determinism and cache-soundness contract of the parallel prover.
//!
//! The worker pool and the canonical proof cache are *pure accelerators*:
//! for any `--jobs` value and with the cache on or off, every verdict,
//! provenance tag, warning, and report byte (wall-clock zeroed) must be
//! identical to the sequential uncached run. Three mechanisms make this
//! hold and are exercised here:
//!
//! - results are collected and merged in candidate order, not completion
//!   order;
//! - workers prove against *overlay* caches (pre-existing entries plus
//!   their own inserts, never a sibling's in-flight inserts), absorbed
//!   only after the join — so cache hits cannot depend on scheduling;
//! - chaos fault streams are salted by task index, not worker thread, so
//!   which checks fault is a function of the program alone.

use std::time::Duration;

use formad::{region_report, Decision, Formad, FormadAnalysis, FormadOptions};
use formad_ir::Program;
use formad_kernels::{lbm, GfmcCase, GreenGaussCase, StencilCase};
use formad_smt::{ChaosConfig, ProofCache};
use proptest::prelude::*;

/// The paper's Table-1 kernel suite at analysis-relevant sizes.
fn suite() -> Vec<(&'static str, Program, Vec<&'static str>, Vec<&'static str>)> {
    let gf = GfmcCase::new(8, 1);
    vec![
        (
            "stencil1",
            StencilCase::small(32, 1).ir(),
            StencilCase::independents().to_vec(),
            StencilCase::dependents().to_vec(),
        ),
        (
            "stencil8",
            StencilCase::large(64, 1).ir(),
            StencilCase::independents().to_vec(),
            StencilCase::dependents().to_vec(),
        ),
        (
            "gfmc",
            gf.ir(),
            GfmcCase::independents().to_vec(),
            GfmcCase::dependents().to_vec(),
        ),
        (
            "gfmc*",
            gf.ir_star(),
            GfmcCase::independents().to_vec(),
            GfmcCase::dependents().to_vec(),
        ),
        (
            "lbm",
            lbm::lbm_ir(),
            lbm::independents().to_vec(),
            lbm::dependents().to_vec(),
        ),
        (
            "greengauss",
            GreenGaussCase::linear(24, 1).ir(),
            GreenGaussCase::independents().to_vec(),
            GreenGaussCase::dependents().to_vec(),
        ),
    ]
}

/// Full textual fingerprint of an analysis: every region report with the
/// wall-clock (the only nondeterministic field) zeroed.
fn fingerprint(a: &mut FormadAnalysis) -> String {
    let mut s = String::new();
    for r in &mut a.regions {
        r.time = Duration::ZERO;
        s.push_str(&region_report(r));
        s.push('\n');
    }
    s
}

fn analyze_with(
    program: &Program,
    indep: &[&str],
    dep: &[&str],
    configure: impl FnOnce(&mut FormadOptions),
) -> FormadAnalysis {
    let mut opts = FormadOptions::new(indep, dep);
    configure(&mut opts);
    Formad::new(opts).analyze(program).expect("analysis")
}

#[test]
fn reports_identical_for_every_job_count() {
    for (name, program, indep, dep) in suite() {
        let run = |jobs: usize| {
            let mut a = analyze_with(&program, &indep, &dep, |o| o.region.jobs = jobs);
            fingerprint(&mut a)
        };
        let sequential = run(1);
        for jobs in [2, 4, 8, 0] {
            assert_eq!(
                sequential,
                run(jobs),
                "{name}: report differs between jobs=1 and jobs={jobs}"
            );
        }
    }
}

#[test]
fn cache_on_and_off_verdicts_agree_on_every_kernel() {
    // One cache handle shared across the entire suite — the harshest
    // sharing pattern: entries inserted while analyzing one kernel are
    // eligible hits for every later kernel.
    let shared = ProofCache::new();
    for (name, program, indep, dep) in suite() {
        let mut cached = analyze_with(&program, &indep, &dep, |o| {
            o.region.jobs = 4;
            o.region.cache = Some(shared.clone());
        });
        let mut plain = analyze_with(&program, &indep, &dep, |o| {
            o.region.jobs = 1;
            o.region.cache = None;
        });
        assert_eq!(
            fingerprint(&mut cached),
            fingerprint(&mut plain),
            "{name}: cached and uncached analyses disagree"
        );
    }
    // The solver keys only presolve-hard queries (everything else is
    // discharged before the cache fast path), so not every kernel
    // produces cache traffic. Re-analyze the whole suite against the
    // now-warm cache: the hard queries that populated it must now be
    // served from it.
    assert!(shared.inserts() > 0, "cache was never populated");
    let hits_before = shared.hits();
    for (_, program, indep, dep) in suite() {
        let _ = analyze_with(&program, &indep, &dep, |o| {
            o.region.cache = Some(shared.clone());
        });
    }
    assert!(
        shared.hits() > hits_before,
        "warm cache served no hits (hits stayed at {hits_before})"
    );
}

#[test]
fn decisions_do_not_depend_on_cache_state() {
    // Analyzing twice against the same cache (cold, then warm) must give
    // the same decisions — a cache hit substitutes for a search, never
    // for a different answer.
    for (name, program, indep, dep) in suite() {
        let shared = ProofCache::new();
        let run = || {
            let mut a = analyze_with(&program, &indep, &dep, |o| {
                o.region.cache = Some(shared.clone());
            });
            fingerprint(&mut a)
        };
        let cold = run();
        let warm = run();
        assert_eq!(cold, warm, "{name}: warm-cache analysis diverged");
    }
}

/// Decisions only, for chaos runs (reports also carry fault warnings —
/// compared separately below).
fn decisions(a: &FormadAnalysis) -> Vec<(usize, String, bool)> {
    let mut out = Vec::new();
    for (ri, r) in a.regions.iter().enumerate() {
        let mut arrays: Vec<&String> = r.decisions.keys().collect();
        arrays.sort();
        for arr in arrays {
            out.push((
                ri,
                arr.clone(),
                matches!(r.decisions[arr], Decision::Shared),
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: under an adversarial (chaotic) prover, the whole report
    /// — verdicts, provenance, recovered-panic warnings — is a function
    /// of the chaos seed alone, not of the worker count. Fault streams
    /// are salted per task, so parallel scheduling cannot move faults
    /// between arrays.
    #[test]
    fn chaos_reports_are_schedule_independent(seed in 0u64..1000, jobs in 2usize..=6) {
        let c = StencilCase::small(24, 2);
        let primal = c.ir();
        let chaos = ChaosConfig {
            seed,
            panic_per_mille: 200,
            unknown_per_mille: 250,
            delay_per_mille: 0,
            delay: Duration::ZERO,
        };
        let run = |jobs: usize| {
            let mut a = analyze_with(
                &primal,
                StencilCase::independents(),
                StencilCase::dependents(),
                |o| {
                    o.region.jobs = jobs;
                    o.region.chaos = Some(chaos.clone());
                },
            );
            fingerprint(&mut a)
        };
        prop_assert_eq!(run(1), run(jobs));
    }
}

#[test]
fn chaos_decisions_stable_across_job_counts_on_all_kernels() {
    for (name, program, indep, dep) in suite() {
        for seed in [1u64, 17] {
            let chaos = ChaosConfig {
                seed,
                panic_per_mille: 150,
                unknown_per_mille: 200,
                delay_per_mille: 0,
                delay: Duration::ZERO,
            };
            let run = |jobs: usize| {
                let a = analyze_with(&program, &indep, &dep, |o| {
                    o.region.jobs = jobs;
                    o.region.chaos = Some(chaos.clone());
                });
                decisions(&a)
            };
            assert_eq!(
                run(1),
                run(4),
                "{name} seed {seed}: chaos decisions depend on job count"
            );
        }
    }
}
