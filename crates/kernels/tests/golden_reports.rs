//! Golden-file snapshot tests: the textual analysis report for each
//! Table-1 kernel is compared byte-for-byte against a checked-in
//! snapshot, so any change to decisions, provenance, query counts, model
//! sizes, or report wording shows up as a reviewable diff.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p formad-kernels --test golden_reports
//! ```

use std::path::PathBuf;
use std::time::Duration;

use formad::{full_report, table1_header, table1_row, Formad, FormadOptions};
use formad_ir::Program;
use formad_kernels::{lbm, GfmcCase, GreenGaussCase, StencilCase};

struct Kernel {
    /// Snapshot file stem under `tests/golden/`.
    stem: &'static str,
    /// Display name used in the report header and Table-1 row.
    name: &'static str,
    program: Program,
    independents: Vec<String>,
    dependents: Vec<String>,
}

fn suite() -> Vec<Kernel> {
    let own = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    let gf = GfmcCase::new(16, 1);
    vec![
        Kernel {
            stem: "stencil1",
            name: "stencil 1",
            program: StencilCase::small(64, 1).ir(),
            independents: own(StencilCase::independents()),
            dependents: own(StencilCase::dependents()),
        },
        Kernel {
            stem: "stencil8",
            name: "stencil 8",
            program: StencilCase::large(128, 1).ir(),
            independents: own(StencilCase::independents()),
            dependents: own(StencilCase::dependents()),
        },
        Kernel {
            stem: "gfmc",
            name: "GFMC",
            program: gf.ir(),
            independents: own(GfmcCase::independents()),
            dependents: own(GfmcCase::dependents()),
        },
        Kernel {
            stem: "gfmc_star",
            name: "GFMC*",
            program: gf.ir_star(),
            independents: own(GfmcCase::independents()),
            dependents: own(GfmcCase::dependents()),
        },
        Kernel {
            stem: "lbm",
            name: "LBM",
            program: lbm::lbm_ir(),
            independents: own(lbm::independents()),
            dependents: own(lbm::dependents()),
        },
        Kernel {
            stem: "green_gauss",
            name: "GreenGauss",
            program: GreenGaussCase::linear(64, 1).ir(),
            independents: own(GreenGaussCase::independents()),
            dependents: own(GreenGaussCase::dependents()),
        },
    ]
}

/// Render the snapshot text for one kernel: Table-1 row plus the long
/// report, with the only wall-clock-dependent field (region time) zeroed
/// so the output is byte-stable.
fn render(k: &Kernel) -> String {
    let mut opts = FormadOptions::new(&[], &[]);
    opts.independents = k.independents.clone();
    opts.dependents = k.dependents.clone();
    let mut analysis = Formad::new(opts)
        .analyze(&k.program)
        .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", k.name));
    for r in &mut analysis.regions {
        r.time = Duration::ZERO;
    }
    format!(
        "{}\n{}\n\n{}",
        table1_header(),
        table1_row(k.name, &analysis),
        full_report(k.name, &analysis)
    )
}

fn golden_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{stem}.txt"))
}

fn check(k: &Kernel) {
    let rendered = render(k);
    let path = golden_path(k.stem);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "report for `{}` diverged from {} — if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1",
        k.name,
        path.display()
    );
}

macro_rules! golden {
    ($test:ident, $stem:expr) => {
        #[test]
        fn $test() {
            let k = suite().into_iter().find(|k| k.stem == $stem).unwrap();
            check(&k);
        }
    };
}

golden!(golden_stencil1, "stencil1");
golden!(golden_stencil8, "stencil8");
golden!(golden_gfmc, "gfmc");
golden!(golden_gfmc_star, "gfmc_star");
golden!(golden_lbm, "lbm");
golden!(golden_green_gauss, "green_gauss");

/// The snapshots themselves must be deterministic: rendering twice (fresh
/// solvers, fresh caches) yields identical bytes.
#[test]
fn golden_rendering_is_deterministic() {
    for k in suite() {
        assert_eq!(
            render(&k),
            render(&k),
            "nondeterministic report: {}",
            k.name
        );
    }
}
