//! The deterministic trace section must be byte-identical across worker
//! counts and cache settings: parallelism and caching are allowed to
//! change *performance* (the `perf` section), never the recorded sequence
//! of phases, queries, verdicts, or decisions. Each trace must also
//! validate against the `formad-trace/v1` schema, and its decisions must
//! agree with the analysis result it was recorded from.

use formad::{
    deterministic_json, trace_json, validate_trace, Decision, Formad, FormadAnalysis,
    FormadOptions, TraceSink,
};
use formad_ir::Program;
use formad_kernels::{lbm, GfmcCase, GreenGaussCase, StencilCase};
use formad_smt::ProofCache;

struct Kernel {
    name: &'static str,
    program: Program,
    independents: Vec<String>,
    dependents: Vec<String>,
}

fn suite() -> Vec<Kernel> {
    let own = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    let gf = GfmcCase::new(8, 1);
    vec![
        Kernel {
            name: "stencil1",
            program: StencilCase::small(32, 1).ir(),
            independents: own(StencilCase::independents()),
            dependents: own(StencilCase::dependents()),
        },
        Kernel {
            name: "stencil8",
            program: StencilCase::large(64, 1).ir(),
            independents: own(StencilCase::independents()),
            dependents: own(StencilCase::dependents()),
        },
        Kernel {
            name: "gfmc",
            program: gf.ir(),
            independents: own(GfmcCase::independents()),
            dependents: own(GfmcCase::dependents()),
        },
        Kernel {
            name: "gfmc_star",
            program: gf.ir_star(),
            independents: own(GfmcCase::independents()),
            dependents: own(GfmcCase::dependents()),
        },
        Kernel {
            name: "lbm",
            program: lbm::lbm_ir(),
            independents: own(lbm::independents()),
            dependents: own(lbm::dependents()),
        },
        Kernel {
            name: "green_gauss",
            program: GreenGaussCase::linear(24, 1).ir(),
            independents: own(GreenGaussCase::independents()),
            dependents: own(GreenGaussCase::dependents()),
        },
    ]
}

/// Run the analysis under the given worker count and cache setting,
/// returning the analysis, the deterministic trace section, and the full
/// trace document.
fn traced_run(k: &Kernel, jobs: usize, cache: bool) -> (FormadAnalysis, String, String) {
    let sink = TraceSink::new();
    let mut opts = FormadOptions::new(&[], &[]);
    opts.independents = k.independents.clone();
    opts.dependents = k.dependents.clone();
    opts.region.jobs = jobs;
    opts.region.cache = cache.then(ProofCache::new);
    opts.region.trace = Some(sink.clone());
    let analysis = Formad::new(opts)
        .analyze(&k.program)
        .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", k.name));
    let events = sink.snapshot();
    assert!(!events.is_empty(), "{}: no trace events recorded", k.name);
    (analysis, deterministic_json(&events), trace_json(&events))
}

#[test]
fn trace_is_identical_across_jobs_and_cache() {
    for k in suite() {
        let (_, reference, _) = traced_run(&k, 1, true);
        for (jobs, cache) in [(4, true), (1, false), (4, false)] {
            let (_, got, _) = traced_run(&k, jobs, cache);
            assert_eq!(
                got, reference,
                "{}: deterministic trace section diverged at jobs={jobs} cache={cache}",
                k.name
            );
        }
    }
}

#[test]
fn trace_validates_and_matches_analysis_decisions() {
    for k in suite() {
        let (analysis, _, doc) = traced_run(&k, 4, true);
        let summary =
            validate_trace(&doc).unwrap_or_else(|e| panic!("{}: invalid trace: {e}", k.name));
        assert!(summary.queries > 0, "{}: no query events", k.name);
        assert_eq!(summary.pipelines, 1, "{}: expected one pipeline", k.name);

        // Every per-array decision in the analysis appears in the trace
        // with the same verdict and provenance, and nothing extra.
        let total: usize = analysis.regions.iter().map(|r| r.decisions.len()).sum();
        assert_eq!(
            summary.decisions.len(),
            total,
            "{}: decision count mismatch",
            k.name
        );
        for r in &analysis.regions {
            for (array, d) in &r.decisions {
                let want = if matches!(d, Decision::Shared) {
                    "shared"
                } else {
                    "guarded"
                };
                let traced = summary
                    .decisions
                    .iter()
                    .find(|td| td.region == r.region as u64 && &td.array == array)
                    .unwrap_or_else(|| {
                        panic!("{}: region {} array {array} missing", k.name, r.region)
                    });
                assert_eq!(traced.decision, want, "{}: {array}", k.name);
                assert_eq!(
                    traced.provenance,
                    r.provenance[array].tag(),
                    "{}: {array}",
                    k.name
                );
            }
        }
    }
}
