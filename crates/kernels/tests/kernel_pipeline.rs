//! Full-pipeline validation on the real benchmark kernels: FormAD
//! decisions match the paper, and every generated adjoint version passes
//! the finite-difference dot-product test.

use formad::{Decision, Formad, FormadOptions, IncMode, ParallelTreatment};
use formad_kernels::{lbm, GfmcCase, GreenGaussCase, StencilCase};
use formad_machine::{dot_product_test, Bindings, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_vec(seed: u64, n: usize) -> Vec<f64> {
    let mut r = StdRng::seed_from_u64(seed);
    (0..n).map(|_| r.gen_range(-1.0..1.0)).collect()
}

#[test]
fn stencil_small_decision_and_stats() {
    let c = StencilCase::small(64, 2);
    let a = Formad::new(FormadOptions::new(
        StencilCase::independents(),
        StencilCase::dependents(),
    ))
    .analyze(&c.ir())
    .unwrap();
    assert!(a.all_safe());
    // Table 1, stencil 1: e = 2, size = 5, loc = 3.
    assert_eq!(a.regions[0].unique_exprs, 2);
    assert_eq!(a.regions[0].model_size, 5);
    assert_eq!(a.regions[0].loc, 3);
}

#[test]
fn stencil_large_decision_and_stats() {
    let c = StencilCase::large(128, 1);
    let a = Formad::new(FormadOptions::new(
        StencilCase::independents(),
        StencilCase::dependents(),
    ))
    .analyze(&c.ir())
    .unwrap();
    assert!(a.all_safe());
    // Table 1, stencil 8: e = 9, size = 1 + 81 = 82, loc = 17.
    assert_eq!(a.regions[0].unique_exprs, 9);
    assert_eq!(a.regions[0].model_size, 82);
    assert_eq!(a.regions[0].loc, 17);
}

#[test]
fn gfmc_split_decision() {
    let c = GfmcCase::new(16, 1);
    let a = Formad::new(FormadOptions::new(
        GfmcCase::independents(),
        GfmcCase::dependents(),
    ))
    .analyze(&c.ir())
    .unwrap();
    assert_eq!(a.regions.len(), 2);
    // Spin exchange: cr increments proven via cl knowledge.
    assert_eq!(a.regions[0].decisions.get("cr"), Some(&Decision::Shared));
    assert_eq!(a.regions[0].decisions.get("cl"), Some(&Decision::Shared));
    // Spin flip: affine row indices.
    assert_eq!(a.regions[1].decisions.get("cr"), Some(&Decision::Shared));
    assert_eq!(a.regions[1].decisions.get("cl"), Some(&Decision::Shared));
}

#[test]
fn gfmc_star_decision() {
    let c = GfmcCase::new(16, 1);
    let a = Formad::new(FormadOptions::new(
        GfmcCase::independents(),
        GfmcCase::dependents(),
    ))
    .analyze(&c.ir_star())
    .unwrap();
    assert_eq!(a.regions.len(), 1);
    assert!(
        matches!(a.regions[0].decisions.get("cr"), Some(Decision::Guarded(_))),
        "{:?}",
        a.regions[0].decisions
    );
}

#[test]
fn lbm_decision_and_stats() {
    let a = Formad::new(FormadOptions::new(lbm::independents(), lbm::dependents()))
        .analyze(&lbm::lbm_ir())
        .unwrap();
    assert!(
        matches!(
            a.regions[0].decisions.get("srcgrid"),
            Some(Decision::Guarded(_))
        ),
        "{:?}",
        a.regions[0].decisions
    );
    // Table 1, LBM: 19 unique write expressions → model size 1 + 19² = 362
    // (srcgrid contributes no knowledge: it is never written).
    assert_eq!(a.regions[0].unique_exprs, 19); // Table 1: e = 19 (srcgrid is never written, so only dstgrid contributes)
                                               // The safe write set is printed for §7.3-style reporting.
    assert_eq!(a.regions[0].safe_write_exprs.len(), 19);
    assert!(!a.regions[0].rejected_exprs.is_empty());
}

#[test]
fn green_gauss_decision() {
    let c = GreenGaussCase::linear(32, 1);
    let a = Formad::new(FormadOptions::new(
        GreenGaussCase::independents(),
        GreenGaussCase::dependents(),
    ))
    .analyze(&c.ir())
    .unwrap();
    assert!(a.all_safe(), "{:?}", a.regions[0].decisions);
    assert_eq!(a.regions[0].unique_exprs, 2);
}

// ---------------------------------------------------------------------
// Adjoint correctness of all four program versions per kernel.
// ---------------------------------------------------------------------

fn check_versions(
    primal: &formad_ir::Program,
    base: &Bindings,
    independents: &[(&str, Vec<f64>)],
    dependents: &[(&str, Vec<f64>)],
    tol: f64,
) {
    let indep: Vec<&str> = independents.iter().map(|(n, _)| *n).collect();
    let dep: Vec<&str> = dependents.iter().map(|(n, _)| *n).collect();
    let tool = Formad::new(FormadOptions::new(&indep, &dep));
    let formad_adj = tool.differentiate(primal).unwrap().adjoint;
    let serial = tool
        .adjoint_with(primal, ParallelTreatment::Serial)
        .unwrap();
    let atomic = tool
        .adjoint_with(primal, ParallelTreatment::Uniform(IncMode::Atomic))
        .unwrap();
    let reduction = tool
        .adjoint_with(primal, ParallelTreatment::Uniform(IncMode::Reduction))
        .unwrap();
    for (name, adj) in [
        ("formad", &formad_adj),
        ("serial", &serial),
        ("atomic", &atomic),
        ("reduction", &reduction),
    ] {
        for threads in [1usize, 4] {
            let t = dot_product_test(
                primal,
                adj,
                base,
                independents,
                dependents,
                &Machine::with_threads(threads),
                1e-6,
                "b",
            )
            .unwrap_or_else(|e| panic!("{name} T={threads}: {e}"));
            assert!(
                t.passes(tol),
                "{name} T={threads}: fd={} adj={} rel={}",
                t.fd_value,
                t.adjoint_value,
                t.rel_error
            );
        }
    }
}

#[test]
fn stencil_adjoints_correct() {
    let c = StencilCase::small(32, 2);
    let base = c.bindings(11);
    check_versions(
        &c.ir(),
        &base,
        &[("uold", rand_vec(21, 32))],
        &[("unew", rand_vec(22, 32))],
        1e-6,
    );
}

#[test]
fn stencil_large_adjoints_correct() {
    let c = StencilCase::large(64, 1);
    let base = c.bindings(13);
    check_versions(
        &c.ir(),
        &base,
        &[("uold", rand_vec(23, 64))],
        &[("unew", rand_vec(24, 64))],
        1e-6,
    );
}

#[test]
fn gfmc_split_adjoints_correct() {
    let c = GfmcCase::new(8, 1);
    let base = c.bindings_split(17);
    let ns2 = c.ns * c.ns;
    check_versions(
        &c.ir(),
        &base,
        &[("cr", rand_vec(31, ns2)), ("cl", rand_vec(32, ns2))],
        &[("cr", rand_vec(33, ns2)), ("cl", rand_vec(34, ns2))],
        1e-4, // nonlinear tanh: finite differences are less exact
    );
}

#[test]
fn gfmc_star_adjoints_correct() {
    let c = GfmcCase::new(8, 1);
    let base = c.bindings(19);
    let ns2 = c.ns * c.ns;
    check_versions(
        &c.ir_star(),
        &base,
        &[("cr", rand_vec(41, ns2)), ("cl", rand_vec(42, ns2))],
        &[("cr", rand_vec(43, ns2)), ("cl", rand_vec(44, ns2))],
        1e-4,
    );
}

#[test]
fn green_gauss_adjoints_correct() {
    let c = GreenGaussCase::linear(24, 2);
    let base = c.bindings(23);
    check_versions(
        &c.ir(),
        &base,
        &[("dv", rand_vec(51, 24))],
        &[("grad", rand_vec(52, 24))],
        1e-6,
    );
}
