//! Unstructured meshes with edge coloring (Green-Gauss substrate, §7.4).
//!
//! The paper parallelizes the edge loop with a coloring approach: edges
//! are grouped into colors such that no two edges of one color share a
//! node, making the per-color parallel loop free of write conflicts. The
//! paper's test mesh is "a simple, linear structure requiring only 2
//! colors"; a greedy coloring for arbitrary meshes is also provided.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected mesh given by its edge list, with a conflict-free edge
/// coloring in CSR layout.
#[derive(Debug, Clone)]
pub struct ColoredMesh {
    /// Number of nodes.
    pub nodes: usize,
    /// `(a, b)` node pairs per edge, 1-based, ordered by color.
    pub edges: Vec<(i64, i64)>,
    /// CSR offsets into `edges` per color: color `c` owns
    /// `edges[color_ia[c] - 1 .. color_ia[c+1] - 1]` (1-based, like the
    /// Fortran `color_ia` array in the paper's listing).
    pub color_ia: Vec<i64>,
}

impl ColoredMesh {
    /// The paper's linear mesh: nodes `1..=n` chained by edges
    /// `(i, i+1)`, 2-colored by edge parity.
    pub fn linear(n: usize) -> ColoredMesh {
        assert!(n >= 2, "linear mesh needs at least 2 nodes");
        let mut edges = Vec::with_capacity(n - 1);
        // Color 1: edges starting at odd nodes; color 2: even.
        for start in [1usize, 2] {
            for a in (start..n).step_by(2) {
                edges.push((a as i64, a as i64 + 1));
            }
        }
        let c1 = n / 2; // edges (1,2), (3,4), ...
        ColoredMesh {
            nodes: n,
            edges,
            color_ia: vec![1, c1 as i64 + 1, n as i64],
        }
    }

    /// A random mesh: `m` edges over `n` nodes, greedily colored.
    pub fn random(n: usize, m: usize, seed: u64) -> ColoredMesh {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut raw: Vec<(i64, i64)> = Vec::with_capacity(m);
        while raw.len() < m {
            let a = rng.gen_range(1..=n as i64);
            let b = rng.gen_range(1..=n as i64);
            if a != b {
                raw.push((a, b));
            }
        }
        Self::greedy_color(n, raw)
    }

    /// Greedy edge coloring: assign each edge the smallest color whose
    /// edges don't touch either endpoint.
    pub fn greedy_color(nodes: usize, raw: Vec<(i64, i64)>) -> ColoredMesh {
        let mut colors: Vec<Vec<(i64, i64)>> = Vec::new();
        // For each color, which nodes are already used.
        let mut used: Vec<Vec<bool>> = Vec::new();
        for (a, b) in raw {
            let mut placed = false;
            for (c, nodes_used) in used.iter_mut().enumerate() {
                if !nodes_used[a as usize] && !nodes_used[b as usize] {
                    nodes_used[a as usize] = true;
                    nodes_used[b as usize] = true;
                    colors[c].push((a, b));
                    placed = true;
                    break;
                }
            }
            if !placed {
                let mut nu = vec![false; nodes + 1];
                nu[a as usize] = true;
                nu[b as usize] = true;
                used.push(nu);
                colors.push(vec![(a, b)]);
            }
        }
        let mut edges = Vec::new();
        let mut color_ia = vec![1i64];
        for group in colors {
            edges.extend(group);
            color_ia.push(edges.len() as i64 + 1);
        }
        ColoredMesh {
            nodes,
            edges,
            color_ia,
        }
    }

    /// Number of colors.
    pub fn num_colors(&self) -> usize {
        self.color_ia.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The `e2n(2, ne)` connectivity array in Fortran column-major order.
    pub fn e2n_flat(&self) -> Vec<i64> {
        let mut v = Vec::with_capacity(2 * self.edges.len());
        for (a, b) in &self.edges {
            v.push(*a);
            v.push(*b);
        }
        v
    }

    /// Check the coloring invariant: within a color, no node repeats.
    pub fn verify(&self) -> bool {
        for c in 0..self.num_colors() {
            let lo = (self.color_ia[c] - 1) as usize;
            let hi = (self.color_ia[c + 1] - 1) as usize;
            let mut seen = vec![false; self.nodes + 1];
            for (a, b) in &self.edges[lo..hi] {
                if seen[*a as usize] || seen[*b as usize] {
                    return false;
                }
                seen[*a as usize] = true;
                seen[*b as usize] = true;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_mesh_two_colors() {
        let m = ColoredMesh::linear(10);
        assert_eq!(m.num_colors(), 2);
        assert_eq!(m.num_edges(), 9);
        assert!(m.verify());
        // Color 1 holds the odd edges.
        assert_eq!(m.edges[0], (1, 2));
        assert_eq!(m.edges[1], (3, 4));
    }

    #[test]
    fn linear_mesh_odd_n() {
        let m = ColoredMesh::linear(11);
        assert_eq!(m.num_edges(), 10);
        assert!(m.verify());
    }

    #[test]
    fn greedy_coloring_valid_on_random_meshes() {
        for seed in 0..5 {
            let m = ColoredMesh::random(40, 120, seed);
            assert!(m.verify(), "seed {seed}");
            assert_eq!(m.num_edges(), 120);
        }
    }

    #[test]
    fn e2n_layout_column_major() {
        let m = ColoredMesh::linear(4);
        let flat = m.e2n_flat();
        // e2n(1, ie), e2n(2, ie) adjacent per edge.
        assert_eq!(flat.len(), 6);
        assert_eq!(&flat[0..2], &[1, 2]);
    }
}
