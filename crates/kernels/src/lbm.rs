//! Lattice-Boltzmann method kernel (paper §7.3, Parboil suite).
//!
//! The streaming step writes `dstgrid` at 19 direction offsets per cell,
//! each offset a per-cell scalar plus a multiple of `n_cell_entries`.
//! The collision/stream reads of `srcgrid` use the same named offsets —
//! except one (`eb`), which is read with multiplier 0 instead of its
//! write multiplier −14399. The adjoint therefore increments `srcgrid`'s
//! adjoint at an expression outside the proven-disjoint write set, and
//! FormAD (correctly) refuses to drop the safeguards. This benchmark is
//! analysis-only in the paper ("no change to the code and thus no speedup
//! is achieved"); we reproduce the analysis outcome and Table 1 row.

use formad_ir::{parse_program, Program};

/// The 19 D3Q19 direction names and their `n_cell_entries` multipliers,
/// exactly as printed in the paper's §7.3 listing.
pub const LBM_OFFSETS: [(&str, i64); 19] = [
    ("w", -1),
    ("se", -119),
    ("c", 0),
    ("nb", -14280),
    ("s", -120),
    ("sb", -14520),
    ("eb", -14399),
    ("et", 14401),
    ("nt", 14520),
    ("t", 14400),
    ("ne", 121),
    ("b", -14400),
    ("wb", -14401),
    ("wt", 14399),
    ("sw", -121),
    ("e", 1),
    ("st", 14280),
    ("nw", 119),
    ("n", 120),
];

/// Generate the LBM streaming subroutine source. Each direction `d` with
/// multiplier `m` produces
/// `dstgrid(d + nce*m + i) = f(srcgrid(d + nce*m + i))`, with the `eb`
/// read anomalously using multiplier 0 (as in the paper).
pub fn lbm_source() -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let names: Vec<&str> = LBM_OFFSETS.iter().map(|(n, _)| *n).collect();
    let _ = writeln!(s, "subroutine lbm(ncells, nce, nel, srcgrid, dstgrid)");
    let _ = writeln!(s, "  integer, intent(in) :: ncells, nce, nel");
    let _ = writeln!(s, "  real, intent(in) :: srcgrid(nel)");
    let _ = writeln!(s, "  real, intent(inout) :: dstgrid(nel)");
    let _ = writeln!(s, "  integer :: i, {}", names.join(", "));
    let _ = writeln!(
        s,
        "  !$omp parallel do shared(srcgrid, dstgrid) private({})",
        names.join(", ")
    );
    let _ = writeln!(s, "  do i = 1, ncells");
    // Per-cell offset scalars (the result of the macro expansion chain in
    // the original C code); values are the entry slots 1..19.
    for (k, (name, _)) in LBM_OFFSETS.iter().enumerate() {
        let _ = writeln!(s, "    {name} = {}", k + 1);
    }
    for (name, mult) in LBM_OFFSETS {
        let read_mult = if name == "eb" { 0 } else { mult };
        let w = offset(name, mult);
        let r = offset(name, read_mult);
        let _ = writeln!(
            s,
            "    dstgrid({w}) = 0.95 * srcgrid({r}) + 0.05 * srcgrid({})",
            offset("c", 0)
        );
    }
    let _ = writeln!(s, "  end do");
    let _ = writeln!(s, "end subroutine");
    s
}

fn offset(name: &str, mult: i64) -> String {
    if mult >= 0 {
        format!("{name} + nce * {mult} + i")
    } else {
        format!("{name} + nce * ({mult}) + i")
    }
}

/// Parsed and validated LBM primal.
pub fn lbm_ir() -> Program {
    let p = parse_program(&lbm_source()).expect("lbm source parses");
    formad_ir::validate_strict(&p).expect("lbm source validates");
    p
}

/// Differentiation inputs.
pub fn independents() -> &'static [&'static str] {
    &["srcgrid"]
}

/// Differentiation outputs.
pub fn dependents() -> &'static [&'static str] {
    &["dstgrid"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_has_19_write_offsets() {
        let src = lbm_source();
        for (name, mult) in LBM_OFFSETS {
            let expect = if mult >= 0 {
                format!("dstgrid({name} + nce * {mult} + i)")
            } else {
                format!("dstgrid({name} + nce * ({mult}) + i)")
            };
            assert!(src.contains(&expect), "missing {expect} in\n{src}");
        }
        // The anomalous eb read with multiplier 0.
        assert!(src.contains("srcgrid(eb + nce * 0 + i)"), "{src}");
        let _ = lbm_ir();
    }

    #[test]
    fn offsets_are_distinct() {
        let mut mults: Vec<i64> = LBM_OFFSETS.iter().map(|(_, m)| *m).collect();
        mults.sort_unstable();
        mults.dedup();
        assert_eq!(mults.len(), 19);
    }
}
