//! Compact stencil benchmark (paper §7.1).
//!
//! The "compact" scheme of Stock et al. balances loads and stores by
//! making each iteration's read and write sets identical, via a strided
//! two-pass sweep. `radius = 1` is the paper's *small* (3-point) stencil,
//! `radius = 8` the *large* (17-point equivalent) one.

use std::fmt::Write;

use formad_ir::{parse_program, Program};
use formad_machine::Bindings;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one stencil experiment.
#[derive(Debug, Clone, Copy)]
pub struct StencilCase {
    /// Grid points.
    pub n: usize,
    /// Sweeps over the domain.
    pub sweeps: usize,
    /// Stencil radius (1 = small, 8 = large).
    pub radius: usize,
}

impl StencilCase {
    /// The paper's small stencil at a given scale.
    pub fn small(n: usize, sweeps: usize) -> StencilCase {
        StencilCase {
            n,
            sweeps,
            radius: 1,
        }
    }

    /// The paper's large stencil at a given scale.
    pub fn large(n: usize, sweeps: usize) -> StencilCase {
        StencilCase {
            n,
            sweeps,
            radius: 8,
        }
    }

    /// Surface-syntax source of the primal subroutine.
    ///
    /// The compact scheme updates `unew(i-k)` for `k = 0..radius` from
    /// `uold` neighbourhood values, in `radius+1` interleaved strided
    /// passes so writes are disjoint across iterations of each parallel
    /// loop.
    pub fn source(&self) -> String {
        let r = self.radius;
        let stride = r + 1;
        let mut s = String::new();
        let _ = writeln!(s, "subroutine stencil{r}(n, nsweep, w, uold, unew)");
        let _ = writeln!(s, "  integer, intent(in) :: n, nsweep");
        let _ = writeln!(s, "  real, intent(in) :: w({})", 2 * r + 1);
        let _ = writeln!(s, "  real, intent(in) :: uold(n)");
        let _ = writeln!(s, "  real, intent(inout) :: unew(n)");
        let _ = writeln!(s, "  integer :: i, offset, from, sweep");
        let _ = writeln!(s, "  do sweep = 1, nsweep");
        let _ = writeln!(s, "    do offset = 0, {}", stride - 1);
        let _ = writeln!(s, "      from = {stride} * 1 + offset");
        let _ = writeln!(s, "      !$omp parallel do shared(unew, uold, w)");
        let _ = writeln!(s, "      do i = from, n - {r}, {stride}");
        // The compact scheme's defining property: identical read and
        // write sets {i-r, …, i}, in 2r+1 update statements (3 for the
        // small stencil, 17 for the large one — the paper's `loc` column).
        for k in 0..=r {
            let widx = k + 1;
            let e = offset_expr("i", -(k as i64));
            let _ = writeln!(s, "        unew({e}) = unew({e}) + w({widx}) * uold({e})");
        }
        for k in 0..r {
            let widx = r + 2 + k;
            let write = offset_expr("i", -(k as i64));
            let read = offset_expr("i", -(k as i64 + 1));
            let _ = writeln!(
                s,
                "        unew({write}) = unew({write}) + w({widx}) * uold({read})"
            );
        }
        let _ = writeln!(s, "      end do");
        let _ = writeln!(s, "    end do");
        let _ = writeln!(s, "  end do");
        let _ = writeln!(s, "end subroutine");
        s
    }

    /// Parsed and validated primal.
    pub fn ir(&self) -> Program {
        let p = parse_program(&self.source()).expect("stencil source parses");
        formad_ir::validate_strict(&p).expect("stencil source validates");
        p
    }

    /// Input bindings with reproducible random data.
    pub fn bindings(&self, seed: u64) -> Bindings {
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..2 * self.radius + 1)
            .map(|_| rng.gen_range(0.1..0.9))
            .collect();
        Bindings::new()
            .int("n", self.n as i64)
            .int("nsweep", self.sweeps as i64)
            .real_array("w", w)
            .real_array(
                "uold",
                (0..self.n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            )
            .real_array("unew", vec![0.0; self.n])
    }

    /// Differentiation inputs.
    pub fn independents() -> &'static [&'static str] {
        &["uold"]
    }

    /// Differentiation outputs.
    pub fn dependents() -> &'static [&'static str] {
        &["unew"]
    }
}

fn offset_expr(base: &str, off: i64) -> String {
    match off.cmp(&0) {
        std::cmp::Ordering::Equal => base.to_string(),
        std::cmp::Ordering::Greater => format!("{base} + {off}"),
        std::cmp::Ordering::Less => format!("{base} - {}", -off),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_machine::{run, Machine};

    #[test]
    fn small_source_matches_paper_shape() {
        let c = StencilCase::small(32, 1);
        let src = c.source();
        assert!(src.contains("do i = from, n - 1, 2"), "{src}");
        assert!(src.contains("unew(i) = unew(i) + w(1) * uold(i)"), "{src}");
        assert!(
            src.contains("unew(i) = unew(i) + w(3) * uold(i - 1)"),
            "{src}"
        );
        assert!(src.contains("unew(i - 1) = unew(i - 1)"), "{src}");
        let _ = c.ir();
    }

    #[test]
    fn large_has_17_reads_9_writes() {
        let c = StencilCase::large(64, 1);
        let src = c.source();
        // radius 8 → write offsets i..i-8 (9 exprs) and reads i-8..i+8.
        assert!(src.contains("uold(i - 8)"), "{src}");
        assert!(!src.contains("uold(i + "), "{src}");
        assert!(src.contains("unew(i - 8)"), "{src}");
        let _ = c.ir();
    }

    #[test]
    fn executes_and_is_thread_invariant() {
        let c = StencilCase::small(40, 2);
        let p = c.ir();
        let mut b1 = c.bindings(7);
        run(&p, &mut b1, &Machine::with_threads(1)).unwrap();
        let mut b4 = c.bindings(7);
        run(&p, &mut b4, &Machine::with_threads(4)).unwrap();
        assert_eq!(b1.get_real_array("unew"), b4.get_real_array("unew"));
        // Something was actually computed.
        assert!(b1.get_real_array("unew").unwrap().iter().any(|v| *v != 0.0));
    }
}
