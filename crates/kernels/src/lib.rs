//! # formad-kernels
//!
//! The six benchmark programs of the paper's evaluation (§7), rebuilt as
//! loop-IR sources with reproducible workload generators:
//!
//! | Module | Paper benchmark | FormAD outcome |
//! |---|---|---|
//! | [`stencil`] (radius 1) | small stencil | safe — no atomics |
//! | [`stencil`] (radius 8) | large stencil | safe — no atomics |
//! | [`gfmc`] (split) | GFMC | safe — no atomics |
//! | [`gfmc`] (fused) | GFMC* | guarded |
//! | [`lbm`] | Parboil LBM | guarded (analysis-only) |
//! | [`green_gauss`] | Green-Gauss gradients | safe — no atomics |
//!
//! [`mesh`] provides the unstructured-mesh substrate (linear 2-color mesh
//! plus greedy coloring) for Green-Gauss.

pub mod gfmc;
pub mod green_gauss;
pub mod lbm;
pub mod mesh;
pub mod native;
pub mod stencil;

pub use gfmc::GfmcCase;
pub use green_gauss::GreenGaussCase;
pub use lbm::{lbm_ir, lbm_source, LBM_OFFSETS};
pub use mesh::ColoredMesh;
pub use native::NativeStencil;
pub use stencil::StencilCase;
