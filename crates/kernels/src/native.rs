//! Native (real-hardware) stencil kernels.
//!
//! Hand-lowered Rust equivalents of the generated stencil programs, used
//! by the criterion benches to measure *actual* wall-clock cost ratios of
//! the three increment disciplines on the host CPU — the calibration
//! evidence for the simulated machine's cost model. The math mirrors the
//! generated adjoint exactly (the stencil is linear, so its adjoint needs
//! no tape).

use formad_runtime::{parallel_for, AtomicF64Slice, ReductionBuffers};

/// Native compact-stencil workspace.
#[derive(Debug, Clone)]
pub struct NativeStencil {
    /// Radius (1 = small, 8 = large).
    pub radius: usize,
    /// Weights, `2r+1` of them.
    pub w: Vec<f64>,
}

impl NativeStencil {
    /// Same weights layout as [`crate::StencilCase`].
    pub fn new(radius: usize, w: Vec<f64>) -> NativeStencil {
        assert_eq!(w.len(), 2 * radius + 1);
        NativeStencil { radius, w }
    }

    /// One primal sweep: `unew(i-k) += w·uold(...)` over the compact
    /// strided passes.
    pub fn primal_sweep(&self, threads: usize, uold: &[f64], unew: &mut [f64]) {
        let n = unew.len();
        let r = self.radius;
        let stride = r + 1;
        // Interior iterations i ∈ [stride+offset .. n-r) stepping by
        // stride (1-based in the IR; 0-based here).
        let unew_cell = std::sync::atomic::AtomicPtr::new(unew.as_mut_ptr());
        for offset in 0..stride {
            let start = stride + offset;
            let count = iter_count(start, n - r, stride);
            let ptr = unew_cell.load(std::sync::atomic::Ordering::Relaxed) as usize;
            parallel_for(threads, count, |_, k| {
                let i = start + k * stride - 1; // 0-based
                                                // Safety: iterations of one pass write disjoint index sets
                                                // {i-r..i} by construction (stride = r+1), which is
                                                // exactly what FormAD proves for the IR version.
                let unew = unsafe { std::slice::from_raw_parts_mut(ptr as *mut f64, n) };
                for k2 in 0..=self.radius {
                    unew[i - k2] += self.w[k2] * uold[i - k2];
                }
                for k2 in 0..self.radius {
                    unew[i - k2] += self.w[self.radius + 1 + k2] * uold[i - k2 - 1];
                }
            });
        }
    }

    /// Adjoint sweep, plain shared increments (the FormAD version).
    pub fn adjoint_sweep_plain(&self, threads: usize, unewb: &[f64], uoldb: &mut [f64]) {
        let n = uoldb.len();
        let r = self.radius;
        let stride = r + 1;
        let uoldb_cell = std::sync::atomic::AtomicPtr::new(uoldb.as_mut_ptr());
        for offset in (0..stride).rev() {
            let start = stride + offset;
            let count = iter_count(start, n - r, stride);
            let ptr = uoldb_cell.load(std::sync::atomic::Ordering::Relaxed) as usize;
            parallel_for(threads, count, |_, k| {
                let i = start + k * stride - 1;
                // Safety: adjoint increments target uoldb{i-r-1..i}, whose
                // disjointness across iterations is the FormAD theorem for
                // this kernel (reads share the write-set index structure).
                let uoldb = unsafe { std::slice::from_raw_parts_mut(ptr as *mut f64, n) };
                for k2 in 0..=self.radius {
                    uoldb[i - k2] += self.w[k2] * unewb[i - k2];
                }
                for k2 in 0..self.radius {
                    uoldb[i - k2 - 1] += self.w[self.radius + 1 + k2] * unewb[i - k2];
                }
            });
        }
    }

    /// Adjoint sweep with atomics on every increment.
    pub fn adjoint_sweep_atomic(&self, threads: usize, unewb: &[f64], uoldb: &AtomicF64Slice) {
        let n = uoldb.len();
        let r = self.radius;
        let stride = r + 1;
        for offset in (0..stride).rev() {
            let start = stride + offset;
            let count = iter_count(start, n - r, stride);
            parallel_for(threads, count, |_, k| {
                let i = start + k * stride - 1;
                for k2 in 0..=self.radius {
                    uoldb.add(i - k2, self.w[k2] * unewb[i - k2]);
                }
                for k2 in 0..self.radius {
                    uoldb.add(i - k2 - 1, self.w[self.radius + 1 + k2] * unewb[i - k2]);
                }
            });
        }
    }

    /// Adjoint sweep with a privatized reduction on `uoldb`.
    pub fn adjoint_sweep_reduction(&self, threads: usize, unewb: &[f64], uoldb: &mut [f64]) {
        let n = uoldb.len();
        let r = self.radius;
        let stride = r + 1;
        for offset in (0..stride).rev() {
            let start = stride + offset;
            let count = iter_count(start, n - r, stride);
            let red = ReductionBuffers::new(threads, n);
            parallel_for(threads, count, |t, k| {
                let i = start + k * stride - 1;
                let buf = red.slice_mut(t);
                for k2 in 0..=self.radius {
                    buf[i - k2] += self.w[k2] * unewb[i - k2];
                }
                for k2 in 0..self.radius {
                    buf[i - k2 - 1] += self.w[self.radius + 1 + k2] * unewb[i - k2];
                }
            });
            red.merge_into(uoldb);
        }
    }
}

/// Iterations of the 1-based inclusive loop `do i = start, hi, stride`.
fn iter_count(start: usize, hi: usize, stride: usize) -> usize {
    if start > hi {
        0
    } else {
        (hi - start) / stride + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(r: usize, n: usize) -> (NativeStencil, Vec<f64>, Vec<f64>) {
        let w: Vec<f64> = (0..2 * r + 1).map(|k| 0.1 + 0.05 * k as f64).collect();
        let st = NativeStencil::new(r, w);
        let uold: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).sin()).collect();
        let unewb: Vec<f64> = (0..n).map(|k| (k as f64 * 0.73).cos()).collect();
        (st, uold, unewb)
    }

    #[test]
    fn all_adjoint_disciplines_agree() {
        let (st, _uold, unewb) = setup(1, 101);
        let n = unewb.len();
        let mut plain = vec![0.0; n];
        st.adjoint_sweep_plain(1, &unewb, &mut plain);
        let atomic = AtomicF64Slice::zeros(n);
        st.adjoint_sweep_atomic(1, &unewb, &atomic);
        let mut red = vec![0.0; n];
        st.adjoint_sweep_reduction(2, &unewb, &mut red);
        let atomic = atomic.into_vec();
        for i in 0..n {
            assert!((plain[i] - atomic[i]).abs() < 1e-12);
            assert!((plain[i] - red[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn primal_matches_interpreter() {
        use formad_machine::{run, Bindings, Machine};
        let r = 1;
        let n = 64;
        let (st, uold, _) = setup(r, n);
        let mut unew_native = vec![0.0; n];
        st.primal_sweep(1, &uold, &mut unew_native);

        let case = crate::StencilCase {
            n,
            sweeps: 1,
            radius: r,
        };
        let p = case.ir();
        let mut b = Bindings::new()
            .int("n", n as i64)
            .int("nsweep", 1)
            .real_array("w", st.w.clone())
            .real_array("uold", uold.clone())
            .real_array("unew", vec![0.0; n]);
        run(&p, &mut b, &Machine::serial()).unwrap();
        let unew_interp = b.get_real_array("unew").unwrap();
        for i in 0..n {
            assert!(
                (unew_native[i] - unew_interp[i]).abs() < 1e-12,
                "i={i}: {} vs {}",
                unew_native[i],
                unew_interp[i]
            );
        }
    }

    #[test]
    fn dot_product_consistency_native() {
        // ⟨unewb, primal(v)⟩ == ⟨adjoint(unewb), v⟩ for the linear stencil.
        let (st, v, unewb) = setup(2, 97);
        let n = v.len();
        let mut jv = vec![0.0; n];
        st.primal_sweep(1, &v, &mut jv);
        let lhs: f64 = unewb.iter().zip(&jv).map(|(a, b)| a * b).sum();
        let mut jt = vec![0.0; n];
        st.adjoint_sweep_plain(1, &unewb, &mut jt);
        let rhs: f64 = jt.iter().zip(&v).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }
}
