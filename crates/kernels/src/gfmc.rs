//! Green's function Monte Carlo kernel (paper §7.2, CORAL suite).
//!
//! Two program variants:
//!
//! - **GFMC** (split): the *spin exchange* runs in its own parallel loop
//!   with a data-dependent inner trip count (large load imbalance), and
//!   the *spin flip* in a second, regular parallel loop. FormAD proves the
//!   exchange's adjoint increments to `cr` safe from the disjointness of
//!   the `cl` writes at the same gathered indices.
//! - **GFMC\*** (fused, the original): both parts share one parallel
//!   loop, and the exchange also reads `cr` through a second gather table
//!   (`msx`) whose relationship to the write set is invisible to static
//!   analysis — FormAD must keep every increment to `cr`'s adjoint
//!   guarded, exactly the paper's negative case. (Our `msx` secretly
//!   aliases rows of the iteration's own `mss` group, so the primal is
//!   race-free and deterministic; the analysis cannot know that.)

use formad_ir::{parse_program, Program};
use formad_machine::Bindings;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Configuration of one GFMC experiment.
#[derive(Debug, Clone, Copy)]
pub struct GfmcCase {
    /// Number of spin states (rows/cols of `cl`, `cr`); must be a
    /// multiple of 4.
    pub ns: usize,
    /// Kernel repetitions (the paper runs 500).
    pub repeats: usize,
}

/// Split version: two parallel loops.
pub const GFMC_SRC: &str = r#"
subroutine gfmc(ns, np, nrep, mss, jcnt, xee, xmm, xf, cr, cl)
  integer, intent(in) :: ns, np, nrep
  integer, intent(in) :: mss(4, np)
  integer, intent(in) :: jcnt(np)
  real, intent(in) :: xee, xmm, xf
  real, intent(inout) :: cr(ns, ns)
  real, intent(inout) :: cl(ns, ns)
  integer :: rep, k12, j, i, idd, iud, idu, iuu
  do rep = 1, nrep
    !$omp parallel do shared(cl, cr, mss, jcnt) private(j, idd, iud, idu, iuu)
    do k12 = 1, np
      idd = mss(1, k12)
      iud = mss(2, k12)
      idu = mss(3, k12)
      iuu = mss(4, k12)
      do j = 1, jcnt(k12)
        cl(idd, j) = xee * cr(idd, j) + xmm * cr(iuu, j)
        cl(iuu, j) = xee * cr(iuu, j) + xmm * cr(idd, j)
        cl(iud, j) = xmm * cr(iud, j) + xee * cr(idu, j)
        cl(idu, j) = xmm * cr(idu, j) + xee * cr(iud, j)
      end do
    end do
    !$omp parallel do shared(cr, cl) private(j)
    do i = 1, ns
      do j = 1, ns
        cr(i, j) = tanh(cr(i, j)) + xf * cl(i, j)
      end do
    end do
  end do
end subroutine
"#;

/// Fused version (GFMC*): one parallel loop, extra opaque gather `msx`.
pub const GFMC_STAR_SRC: &str = r#"
subroutine gfmcstar(ns, np, nrep, mss, msx, jcnt, xee, xmm, xf, cr, cl)
  integer, intent(in) :: ns, np, nrep
  integer, intent(in) :: mss(4, np)
  integer, intent(in) :: msx(np)
  integer, intent(in) :: jcnt(np)
  real, intent(in) :: xee, xmm, xf
  real, intent(inout) :: cr(ns, ns)
  real, intent(inout) :: cl(ns, ns)
  integer :: rep, k12, j, idd, iud, idu, iuu, kk
  do rep = 1, nrep
    !$omp parallel do shared(cl, cr, mss, msx, jcnt) private(j, idd, iud, idu, iuu, kk)
    do k12 = 1, np
      idd = mss(1, k12)
      iud = mss(2, k12)
      idu = mss(3, k12)
      iuu = mss(4, k12)
      kk = msx(k12)
      do j = 1, jcnt(k12)
        cl(idd, j) = xee * cr(idd, j) + xmm * cr(kk, j)
        cl(iuu, j) = xee * cr(iuu, j) + xmm * cr(idd, j)
        cl(iud, j) = xmm * cr(iud, j) + xee * cr(idu, j)
        cl(idu, j) = xmm * cr(idu, j) + xee * cr(iud, j)
      end do
      do j = 1, ns
        cr(idd, j) = tanh(cr(idd, j)) + xf * cl(idd, j)
        cr(iud, j) = tanh(cr(iud, j)) + xf * cl(iud, j)
        cr(idu, j) = tanh(cr(idu, j)) + xf * cl(idu, j)
        cr(iuu, j) = tanh(cr(iuu, j)) + xf * cl(iuu, j)
      end do
    end do
  end do
end subroutine
"#;

impl GfmcCase {
    /// Standard case at a given scale.
    pub fn new(ns: usize, repeats: usize) -> GfmcCase {
        assert_eq!(ns % 4, 0, "ns must be a multiple of 4");
        GfmcCase { ns, repeats }
    }

    /// Pair count.
    pub fn np(&self) -> usize {
        self.ns / 4
    }

    /// Parsed split-version primal.
    pub fn ir(&self) -> Program {
        let p = parse_program(GFMC_SRC).expect("gfmc source parses");
        formad_ir::validate_strict(&p).expect("gfmc source validates");
        p
    }

    /// Parsed fused-version primal (GFMC*).
    pub fn ir_star(&self) -> Program {
        let p = parse_program(GFMC_STAR_SRC).expect("gfmc* source parses");
        formad_ir::validate_strict(&p).expect("gfmc* source validates");
        p
    }

    /// Bindings shared by both variants. `mss` partitions the rows into
    /// groups of 4 (a random permutation), so writes are disjoint across
    /// iterations; `jcnt` ramps linearly for load imbalance; `msx` points
    /// at each group's own second row, keeping the fused primal race-free
    /// while staying opaque to the analysis.
    pub fn bindings(&self, seed: u64) -> Bindings {
        let mut rng = StdRng::seed_from_u64(seed);
        let ns = self.ns;
        let np = self.np();
        let mut perm: Vec<i64> = (1..=ns as i64).collect();
        perm.shuffle(&mut rng);
        // mss(4, np) column-major: group g owns perm[4g..4g+4].
        let mss: Vec<i64> = perm.clone();
        let msx: Vec<i64> = (0..np).map(|g| perm[4 * g + 1]).collect();
        // Load imbalance: trip counts ramp from ns/4 to ns.
        let jcnt: Vec<i64> = (0..np)
            .map(|g| ((ns / 4) + (3 * ns / 4) * (g + 1) / np).max(1) as i64)
            .collect();
        Bindings::new()
            .int("ns", ns as i64)
            .int("np", np as i64)
            .int("nrep", self.repeats as i64)
            .int_array("mss", mss)
            .int_array("msx", msx)
            .int_array("jcnt", jcnt)
            .real("xee", 0.7)
            .real("xmm", 0.3)
            .real("xf", 0.05)
            .real_array(
                "cr",
                (0..ns * ns).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            )
            .real_array(
                "cl",
                (0..ns * ns).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            )
    }

    /// Bindings for the split variant (no `msx` parameter).
    pub fn bindings_split(&self, seed: u64) -> Bindings {
        let mut b = self.bindings(seed);
        b.int_arrays.remove("msx");
        b
    }

    /// Differentiation inputs ("using both cl and cr as active input and
    /// output variables", §7.2).
    pub fn independents() -> &'static [&'static str] {
        &["cr", "cl"]
    }

    /// Differentiation outputs.
    pub fn dependents() -> &'static [&'static str] {
        &["cr", "cl"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_machine::{run, Machine};

    #[test]
    fn split_executes_thread_invariant() {
        let c = GfmcCase::new(16, 2);
        let p = c.ir();
        let mut b1 = c.bindings_split(1);
        run(&p, &mut b1, &Machine::with_threads(1)).unwrap();
        let mut b4 = c.bindings_split(1);
        run(&p, &mut b4, &Machine::with_threads(4)).unwrap();
        assert_eq!(b1.get_real_array("cr"), b4.get_real_array("cr"));
        assert_eq!(b1.get_real_array("cl"), b4.get_real_array("cl"));
    }

    #[test]
    fn fused_executes_thread_invariant() {
        let c = GfmcCase::new(16, 2);
        let p = c.ir_star();
        let mut b1 = c.bindings(1);
        run(&p, &mut b1, &Machine::with_threads(1)).unwrap();
        let mut b4 = c.bindings(1);
        run(&p, &mut b4, &Machine::with_threads(4)).unwrap();
        assert_eq!(b1.get_real_array("cr"), b4.get_real_array("cr"));
    }

    #[test]
    fn jcnt_is_imbalanced() {
        let c = GfmcCase::new(32, 1);
        let b = c.bindings(0);
        let jcnt = &b.int_arrays["jcnt"];
        assert!(jcnt.last().unwrap() > jcnt.first().unwrap());
        assert!(*jcnt.last().unwrap() as usize <= c.ns);
    }

    #[test]
    fn mss_partitions_rows() {
        let c = GfmcCase::new(24, 1);
        let b = c.bindings(9);
        let mut rows: Vec<i64> = b.int_arrays["mss"].clone();
        rows.sort_unstable();
        assert_eq!(rows, (1..=24).collect::<Vec<i64>>());
    }
}
