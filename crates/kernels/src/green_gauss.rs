//! Green-Gauss gradient benchmark (paper §7.4).
//!
//! Edge loop over a colored unstructured mesh: each edge gathers the two
//! node values, forms a face value, and scatters ± contributions to the
//! node gradients. The `if (i /= j)` guard and the data-dependent
//! `edge2nodes` indices make this the paper's hardest static-analysis
//! case that FormAD still proves safe.

use formad_ir::{parse_program, Program};
use formad_machine::Bindings;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mesh::ColoredMesh;

/// Configuration of one Green-Gauss experiment.
#[derive(Debug, Clone)]
pub struct GreenGaussCase {
    /// The colored mesh.
    pub mesh: ColoredMesh,
    /// Number of applications of the kernel (the paper uses 10,000).
    pub repeats: usize,
}

/// The primal source (one application repeated `nrep` times).
pub const GREEN_GAUSS_SRC: &str = r#"
subroutine greengauss(nc, ne, nn, nrep, color_ia, e2n, sij, dv, grad)
  integer, intent(in) :: nc, ne, nn, nrep
  integer, intent(in) :: color_ia(nc + 1)
  integer, intent(in) :: e2n(2, ne)
  real, intent(in) :: sij(ne)
  real, intent(in) :: dv(nn)
  real, intent(inout) :: grad(nn)
  integer :: rep, ic, ie, i, j
  real :: dvface
  do rep = 1, nrep
    do ic = 1, nc
      !$omp parallel do private(ie, i, j, dvface) shared(grad, dv, sij, e2n, color_ia)
      do ie = color_ia(ic), color_ia(ic + 1) - 1
        i = e2n(1, ie)
        j = e2n(2, ie)
        if (i .ne. j) then
          dvface = 0.5 * (dv(i) + dv(j))
          grad(i) = grad(i) + dvface * sij(ie)
          grad(j) = grad(j) - dvface * sij(ie)
        end if
      end do
    end do
  end do
end subroutine
"#;

impl GreenGaussCase {
    /// The paper's setup at a given scale: linear mesh, 2 colors.
    pub fn linear(nodes: usize, repeats: usize) -> GreenGaussCase {
        GreenGaussCase {
            mesh: ColoredMesh::linear(nodes),
            repeats,
        }
    }

    /// Parsed and validated primal.
    pub fn ir(&self) -> Program {
        let p = parse_program(GREEN_GAUSS_SRC).expect("green-gauss source parses");
        formad_ir::validate_strict(&p).expect("green-gauss source validates");
        p
    }

    /// Input bindings.
    pub fn bindings(&self, seed: u64) -> Bindings {
        let mut rng = StdRng::seed_from_u64(seed);
        let ne = self.mesh.num_edges();
        let nn = self.mesh.nodes;
        Bindings::new()
            .int("nc", self.mesh.num_colors() as i64)
            .int("ne", ne as i64)
            .int("nn", nn as i64)
            .int("nrep", self.repeats as i64)
            .int_array("color_ia", self.mesh.color_ia.clone())
            .int_array("e2n", self.mesh.e2n_flat())
            .real_array("sij", (0..ne).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .real_array("dv", (0..nn).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .real_array("grad", vec![0.0; nn])
    }

    /// Differentiation inputs.
    pub fn independents() -> &'static [&'static str] {
        &["dv"]
    }

    /// Differentiation outputs.
    pub fn dependents() -> &'static [&'static str] {
        &["grad"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_machine::{run, Machine};

    #[test]
    fn executes_and_matches_reference() {
        let c = GreenGaussCase::linear(12, 1);
        let p = c.ir();
        let mut b = c.bindings(3);
        let sij = b.get_real_array("sij").unwrap().to_vec();
        let dv = b.get_real_array("dv").unwrap().to_vec();
        run(&p, &mut b, &Machine::with_threads(3)).unwrap();
        // Reference computation in plain Rust.
        let mut grad = vec![0.0; c.mesh.nodes];
        for (ie, (a, bn)) in c.mesh.edges.iter().enumerate() {
            let (a, bn) = (*a as usize - 1, *bn as usize - 1);
            if a != bn {
                let f = 0.5 * (dv[a] + dv[bn]);
                grad[a] += f * sij[ie];
                grad[bn] -= f * sij[ie];
            }
        }
        let got = b.get_real_array("grad").unwrap();
        for (g, r) in got.iter().zip(&grad) {
            assert!((g - r).abs() < 1e-12, "{g} vs {r}");
        }
    }

    #[test]
    fn thread_invariant() {
        let c = GreenGaussCase::linear(30, 2);
        let p = c.ir();
        let mut b1 = c.bindings(5);
        run(&p, &mut b1, &Machine::with_threads(1)).unwrap();
        let mut b8 = c.bindings(5);
        run(&p, &mut b8, &Machine::with_threads(8)).unwrap();
        assert_eq!(b1.get_real_array("grad"), b8.get_real_array("grad"));
    }
}
