//! Activity analysis (paper §5.4).
//!
//! A variable is *active* when it is both **varied** (its value depends on
//! an independent input) and **useful** (its value influences a dependent
//! output). Only active variables receive adjoints, which shrinks the set
//! of reference pairs FormAD must analyze.
//!
//! The analysis here is flow-insensitive at variable granularity (arrays
//! are single entities), a sound over-approximation adequate for the
//! paper's kernels.

use std::collections::HashSet;

use formad_ir::{Expr, LValue, Program, Stmt, Ty};

/// Result of activity analysis.
#[derive(Debug, Clone)]
pub struct Activity {
    /// Variables whose value may depend on an independent input.
    pub varied: HashSet<String>,
    /// Variables whose value may influence a dependent output.
    pub useful: HashSet<String>,
}

impl Activity {
    /// Is `name` active (needs an adjoint)?
    pub fn is_active(&self, name: &str) -> bool {
        self.varied.contains(name) && self.useful.contains(name)
    }

    /// Run the analysis for the given independent (differentiation inputs)
    /// and dependent (outputs) variable sets. Integer variables never
    /// carry derivatives.
    pub fn analyze(p: &Program, independents: &[String], dependents: &[String]) -> Activity {
        let real_vars: HashSet<String> = p
            .decls()
            .filter(|d| d.ty == Ty::Real)
            .map(|d| d.name.clone())
            .collect();

        // Forward: varied.
        let mut varied: HashSet<String> = independents
            .iter()
            .filter(|v| real_vars.contains(*v))
            .cloned()
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            p.walk_stmts(&mut |s| {
                if let Some((lhs, rhs)) = assign_parts(s) {
                    let lhs_name = lhs.name().to_string();
                    if !real_vars.contains(&lhs_name) {
                        return;
                    }
                    if rhs_real_sources(rhs, &real_vars)
                        .iter()
                        .any(|v| varied.contains(v))
                        && varied.insert(lhs_name)
                    {
                        changed = true;
                    }
                }
            });
        }

        // Backward: useful.
        let mut useful: HashSet<String> = dependents
            .iter()
            .filter(|v| real_vars.contains(*v))
            .cloned()
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            p.walk_stmts(&mut |s| {
                if let Some((lhs, rhs)) = assign_parts(s) {
                    if !useful.contains(lhs.name()) {
                        return;
                    }
                    for v in rhs_real_sources(rhs, &real_vars) {
                        if useful.insert(v) {
                            changed = true;
                        }
                    }
                }
            });
        }

        Activity { varied, useful }
    }
}

/// Extract (lhs, rhs) from assignment-like statements.
fn assign_parts(s: &Stmt) -> Option<(&LValue, &Expr)> {
    match s {
        Stmt::Assign { lhs, rhs } | Stmt::AtomicAdd { lhs, rhs } => Some((lhs, rhs)),
        _ => None,
    }
}

/// Real-typed variables whose *values* feed the rhs (index expressions
/// are integer-valued and cannot carry derivatives, so arrays appearing
/// only inside indices are excluded).
fn rhs_real_sources(rhs: &Expr, real_vars: &HashSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    collect_value_sources(rhs, real_vars, &mut out);
    out
}

fn collect_value_sources(e: &Expr, real_vars: &HashSet<String>, out: &mut Vec<String>) {
    match e {
        Expr::IntLit(_) | Expr::RealLit(_) => {}
        Expr::Var(n) => {
            if real_vars.contains(n) && !out.contains(n) {
                out.push(n.clone());
            }
        }
        Expr::Index { array, .. } => {
            // The element value flows; the (integer) indices do not.
            if real_vars.contains(array) && !out.contains(array) {
                out.push(array.clone());
            }
        }
        Expr::Unary { arg, .. } => collect_value_sources(arg, real_vars, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_value_sources(lhs, real_vars, out);
            collect_value_sources(rhs, real_vars, out);
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_value_sources(a, real_vars, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_ir::parse_program;

    fn act(src: &str, indep: &[&str], dep: &[&str]) -> Activity {
        let p = parse_program(src).unwrap();
        Activity::analyze(
            &p,
            &indep.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &dep.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        )
    }

    const CHAIN: &str = r#"
subroutine t(n, x, y, z, w)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n), z(n), w(n)
  integer :: i
  do i = 1, n
    y(i) = 2.0 * x(i)
    z(i) = y(i) + 1.0
    w(i) = 3.0
  end do
end subroutine
"#;

    #[test]
    fn varied_propagates_forward() {
        let a = act(CHAIN, &["x"], &["z"]);
        assert!(a.varied.contains("x"));
        assert!(a.varied.contains("y"));
        assert!(a.varied.contains("z"));
        // w is assigned a constant: never varied.
        assert!(!a.varied.contains("w"));
    }

    #[test]
    fn useful_propagates_backward() {
        let a = act(CHAIN, &["x"], &["z"]);
        assert!(a.useful.contains("z"));
        assert!(a.useful.contains("y"));
        assert!(a.useful.contains("x"));
        assert!(!a.useful.contains("w"));
    }

    #[test]
    fn active_is_intersection() {
        let a = act(CHAIN, &["x"], &["y"]);
        assert!(a.is_active("x"));
        assert!(a.is_active("y"));
        // z depends on x but doesn't influence y.
        assert!(!a.is_active("z"));
        assert!(!a.is_active("w"));
    }

    #[test]
    fn integer_arrays_never_active() {
        let a = act(
            r#"
subroutine t(n, c, x, y)
  integer, intent(in) :: n
  integer, intent(in) :: c(n)
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#,
            &["x"],
            &["y"],
        );
        assert!(a.is_active("x"));
        assert!(a.is_active("y"));
        // The index array c feeds only addresses, not values.
        assert!(!a.is_active("c"));
        assert!(!a.varied.contains("c"));
    }

    #[test]
    fn index_use_does_not_propagate_value_activity() {
        // u's value feeds only an index: w = v(int(u)) is not expressible
        // in the language (indices are integer), so the closest case is an
        // active array used in an index-free rhs position only.
        let a = act(
            r#"
subroutine t(n, x, y, u)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  real, intent(in) :: u(n)
  integer :: i
  do i = 1, n
    y(i) = x(i)
  end do
end subroutine
"#,
            &["x"],
            &["y"],
        );
        assert!(!a.is_active("u"));
    }
}
