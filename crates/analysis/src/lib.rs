//! # formad-analysis
//!
//! The static analyses FormAD layers on top of the IR (paper §5.1–§5.4):
//!
//! - [`mod@cfg`]: control-flow graph construction over the structured IR;
//! - [`dom`]: dominator / post-dominator trees (Cooper–Harvey–Kennedy);
//! - [`context`]: control *contexts* with the inclusion ordering used to
//!   place and retrieve disjointness knowledge;
//! - [`instance`]: instance numbering of possibly-overwritten scalars via
//!   reaching definitions;
//! - [`activity`]: forward/backward activity analysis limiting which
//!   variables receive adjoints;
//! - [`refs`]: collection of array reference sites (with exact-increment
//!   tagging) feeding knowledge extraction and exploitation.

pub mod activity;
pub mod cfg;
pub mod context;
pub mod dom;
pub mod instance;
pub mod refs;

pub use activity::Activity;
pub use cfg::{Cfg, NodeId, NodeKind, ENTRY, EXIT};
pub use context::{Contexts, CtxId};
pub use dom::{dominators, post_dominators, DomTree};
pub use instance::{InstanceId, Instances};
pub use refs::{collect_refs, AccessKind, ArrayRef, IncRole};
