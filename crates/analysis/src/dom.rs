//! Dominator and post-dominator analysis (Cooper–Harvey–Kennedy).

use crate::cfg::{Cfg, NodeId, ENTRY, EXIT};

/// Immediate-dominator tree plus an ancestor query.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[n]` = immediate dominator of `n`; the root's idom is itself.
    pub idom: Vec<NodeId>,
    root: NodeId,
}

impl DomTree {
    /// Does `a` dominate `b` (reflexively)?
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut n = b;
        loop {
            if n == a {
                return true;
            }
            if n == self.root {
                return false;
            }
            n = self.idom[n];
        }
    }

    /// Root of the tree (entry for dominators, exit for post-dominators).
    pub fn root(&self) -> NodeId {
        self.root
    }
}

/// Compute the dominator tree of `cfg`.
pub fn dominators(cfg: &Cfg<'_>) -> DomTree {
    let rpo = cfg.reverse_postorder();
    compute(cfg.len(), &rpo, |n| &cfg.preds[n], ENTRY)
}

/// Compute the post-dominator tree of `cfg` (dominators on the reversed
/// graph, rooted at the exit).
pub fn post_dominators(cfg: &Cfg<'_>) -> DomTree {
    // Reverse postorder of the reversed graph = DFS finish order from EXIT
    // over predecessor edges.
    let n = cfg.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(NodeId, usize)> = vec![(EXIT, 0)];
    visited[EXIT] = true;
    while let Some((node, idx)) = stack.pop() {
        if idx < cfg.preds[node].len() {
            stack.push((node, idx + 1));
            let next = cfg.preds[node][idx];
            if !visited[next] {
                visited[next] = true;
                stack.push((next, 0));
            }
        } else {
            order.push(node);
        }
    }
    order.reverse();
    compute(n, &order, |x| &cfg.succs[x], EXIT)
}

/// The CHK iterative algorithm, parameterized over edge direction.
fn compute<'f>(
    n: usize,
    rpo: &[NodeId],
    preds: impl Fn(NodeId) -> &'f Vec<NodeId>,
    root: NodeId,
) -> DomTree {
    const UNDEF: usize = usize::MAX;
    let mut rpo_index = vec![UNDEF; n];
    for (k, &node) in rpo.iter().enumerate() {
        rpo_index[node] = k;
    }
    let mut idom = vec![UNDEF; n];
    idom[root] = root;

    let intersect = |idom: &[usize], mut a: NodeId, mut b: NodeId| -> NodeId {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a];
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b];
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &node in rpo.iter() {
            if node == root {
                continue;
            }
            let mut new_idom = UNDEF;
            for &p in preds(node) {
                if idom[p] == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    p
                } else {
                    intersect(&idom, new_idom, p)
                };
            }
            if new_idom != UNDEF && idom[node] != new_idom {
                idom[node] = new_idom;
                changed = true;
            }
        }
    }
    // Unreachable nodes (none in well-formed CFGs) fall back to the root.
    for v in idom.iter_mut() {
        if *v == UNDEF {
            *v = root;
        }
    }
    DomTree { idom, root }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NodeKind;
    use formad_ir::{parse_program, Stmt};

    fn body_of(src: &str) -> Vec<Stmt> {
        parse_program(src).unwrap().body
    }

    const DIAMOND: &str = r#"
subroutine t(a, i, j)
  real, intent(inout) :: a
  integer, intent(in) :: i, j
  a = 0.0
  if (i .ne. j) then
    a = 1.0
  else
    a = 2.0
  end if
  a = 3.0
end subroutine
"#;

    #[test]
    fn diamond_dominators() {
        let body = body_of(DIAMOND);
        let cfg = Cfg::build(&body);
        let dom = dominators(&cfg);
        let pdom = post_dominators(&cfg);
        let branch = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::Branch(_)))
            .unwrap();
        let join = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::Join))
            .unwrap();
        let arms: Vec<_> = (0..cfg.len())
            .filter(|&n| {
                matches!(cfg.nodes[n], NodeKind::Simple(_)) && cfg.preds[n] == vec![branch]
            })
            .collect();
        assert_eq!(arms.len(), 2);
        // The branch dominates both arms and the join; neither arm
        // dominates the join.
        for &a in &arms {
            assert!(dom.dominates(branch, a));
            assert!(!dom.dominates(a, join));
            // The join post-dominates both arms.
            assert!(pdom.dominates(join, a));
            // Arms do not post-dominate the branch.
            assert!(!pdom.dominates(a, branch));
        }
        assert!(dom.dominates(branch, join));
        // The join post-dominates the branch.
        assert!(pdom.dominates(join, branch));
    }

    #[test]
    fn loop_body_dominated_not_postdominating() {
        let body = body_of(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i
  do i = 1, n
    u(i) = 0.0
  end do
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let dom = dominators(&cfg);
        let pdom = post_dominators(&cfg);
        let head = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::LoopHead(_)))
            .unwrap();
        let stmt = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::Simple(_)))
            .unwrap();
        assert!(dom.dominates(head, stmt));
        // The loop may execute zero iterations: the body statement does not
        // post-dominate the head.
        assert!(!pdom.dominates(stmt, head));
        // The head post-dominates its body (flow must come back through).
        assert!(pdom.dominates(head, stmt));
    }

    #[test]
    fn entry_dominates_everything() {
        let body = body_of(DIAMOND);
        let cfg = Cfg::build(&body);
        let dom = dominators(&cfg);
        for n in 0..cfg.len() {
            assert!(dom.dominates(crate::cfg::ENTRY, n));
        }
        let pdom = post_dominators(&cfg);
        for n in 0..cfg.len() {
            assert!(pdom.dominates(crate::cfg::EXIT, n));
        }
    }

    #[test]
    fn reflexive() {
        let body = body_of(DIAMOND);
        let cfg = Cfg::build(&body);
        let dom = dominators(&cfg);
        for n in 0..cfg.len() {
            assert!(dom.dominates(n, n));
        }
    }

    #[test]
    fn straight_line_chain() {
        let body = body_of(
            r#"
subroutine t(a)
  real, intent(inout) :: a
  a = 1.0
  a = 2.0
  a = 3.0
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let dom = dominators(&cfg);
        let pdom = post_dominators(&cfg);
        // In a chain every earlier statement dominates later ones and every
        // later statement post-dominates earlier ones.
        let stmts: Vec<_> = (0..cfg.len())
            .filter(|&n| matches!(cfg.nodes[n], NodeKind::Simple(_)))
            .collect();
        assert_eq!(stmts.len(), 3);
        for (k1, &a) in stmts.iter().enumerate() {
            for (k2, &b) in stmts.iter().enumerate() {
                assert_eq!(dom.dominates(a, b), k1 <= k2);
                assert_eq!(pdom.dominates(b, a), k1 <= k2);
            }
        }
    }
}
