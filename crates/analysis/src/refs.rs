//! Collection of array references inside a parallel region.
//!
//! FormAD's knowledge extraction and exploitation both operate on the set
//! of `(array, index-expressions, read/write, context)` tuples occurring
//! inside a parallel loop body (paper §5, phase 1 and 2). Exact-increment
//! statements are tagged (paper §5.4): the adjoint of `u(e) = u(e) + rhs`
//! only *reads* the adjoint of `u`, so such references can be excluded
//! from the adjoint conflict-pair set.

use formad_ir::{Expr, LValue, Stmt};

use crate::cfg::{Cfg, NodeId, NodeKind};

/// Direction of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Role of the reference with respect to exact-increment detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncRole {
    /// Not part of an exact increment.
    None,
    /// The written lvalue of `u(e) = u(e) + rhs`.
    IncrementWrite,
    /// The self-read of `u(e) = u(e) + rhs`.
    IncrementRead,
}

/// One array reference site.
#[derive(Debug, Clone)]
pub struct ArrayRef {
    /// Array name.
    pub array: String,
    /// Index expressions at the reference.
    pub indices: Vec<Expr>,
    /// Read or write.
    pub kind: AccessKind,
    /// CFG node containing the reference.
    pub node: NodeId,
    /// Exact-increment tagging.
    pub inc: IncRole,
}

/// Collect every array reference in the CFG, in node order.
pub fn collect_refs(cfg: &Cfg<'_>) -> Vec<ArrayRef> {
    let mut out = Vec::new();
    for (node, kind) in cfg.nodes.iter().enumerate() {
        match kind {
            NodeKind::Entry | NodeKind::Exit | NodeKind::Join => {}
            NodeKind::Simple(s) => collect_stmt(s, node, &mut out),
            NodeKind::Branch(cond) => {
                cond.walk_exprs(&mut |e| collect_expr_reads(e, node, IncRole::None, &mut out));
            }
            NodeKind::LoopHead(l) => {
                for e in [&l.lo, &l.hi, &l.step] {
                    collect_expr_reads_deep(e, node, &mut out);
                }
            }
        }
    }
    out
}

fn collect_stmt(s: &Stmt, node: NodeId, out: &mut Vec<ArrayRef>) {
    match s {
        Stmt::Assign { lhs, rhs } => {
            let inc = s.as_increment();
            let (wrole, added) = match &inc {
                Some((_, added)) => (IncRole::IncrementWrite, Some(added.clone())),
                None => (IncRole::None, None),
            };
            collect_lvalue_write(lhs, node, wrole, out);
            match added {
                Some(added) => {
                    // Tag the self-read; the remaining reads come from the
                    // added expression.
                    if let LValue::Index { array, indices } = lhs {
                        out.push(ArrayRef {
                            array: array.clone(),
                            indices: indices.clone(),
                            kind: AccessKind::Read,
                            node,
                            inc: IncRole::IncrementRead,
                        });
                    }
                    collect_expr_reads_deep(&added, node, out);
                }
                None => collect_expr_reads_deep(rhs, node, out),
            }
        }
        Stmt::AtomicAdd { lhs, rhs } => {
            collect_lvalue_write(lhs, node, IncRole::IncrementWrite, out);
            if let LValue::Index { array, indices } = lhs {
                out.push(ArrayRef {
                    array: array.clone(),
                    indices: indices.clone(),
                    kind: AccessKind::Read,
                    node,
                    inc: IncRole::IncrementRead,
                });
            }
            collect_expr_reads_deep(rhs, node, out);
        }
        Stmt::Push(e) => collect_expr_reads_deep(e, node, out),
        Stmt::Pop(lv) => collect_lvalue_write(lv, node, IncRole::None, out),
        // Control statements never reach here: the CFG splits them.
        Stmt::If { .. } | Stmt::For(_) => unreachable!("structured stmt in Simple node"),
    }
}

fn collect_lvalue_write(lv: &LValue, node: NodeId, role: IncRole, out: &mut Vec<ArrayRef>) {
    if let LValue::Index { array, indices } = lv {
        out.push(ArrayRef {
            array: array.clone(),
            indices: indices.clone(),
            kind: AccessKind::Write,
            node,
            inc: role,
        });
        // Reads performed while computing the address.
        for ix in indices {
            collect_expr_reads_deep(ix, node, out);
        }
    }
}

/// Record every array read in `e`, including arrays read inside index
/// expressions of other reads (e.g. `x(c(i) + 7)` yields reads of both
/// `x` and `c`).
fn collect_expr_reads_deep(e: &Expr, node: NodeId, out: &mut Vec<ArrayRef>) {
    e.walk(&mut |sub| {
        if let Expr::Index { array, indices } = sub {
            out.push(ArrayRef {
                array: array.clone(),
                indices: indices.clone(),
                kind: AccessKind::Read,
                node,
                inc: IncRole::None,
            });
        }
    });
}

fn collect_expr_reads(e: &Expr, node: NodeId, inc: IncRole, out: &mut Vec<ArrayRef>) {
    if let Expr::Index { array, indices } = e {
        out.push(ArrayRef {
            array: array.clone(),
            indices: indices.clone(),
            kind: AccessKind::Read,
            node,
            inc,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_ir::parse_program;

    fn refs_of(src: &str) -> Vec<ArrayRef> {
        let p = parse_program(src).unwrap();
        let loops = p.parallel_loops();
        let cfg = Cfg::build(&loops[0].body);
        collect_refs(&cfg)
    }

    #[test]
    fn fig2_reads_and_writes() {
        let refs = refs_of(
            r#"
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#,
        );
        let writes: Vec<_> = refs
            .iter()
            .filter(|r| r.kind == AccessKind::Write)
            .collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].array, "y");
        // Reads: x(c(i)+7), and c(i) three times (address computations:
        // once under y's lvalue, once under x's index, once standalone
        // collection of x's deep walk) — at minimum x once and c at least
        // twice.
        let x_reads = refs
            .iter()
            .filter(|r| r.kind == AccessKind::Read && r.array == "x")
            .count();
        let c_reads = refs
            .iter()
            .filter(|r| r.kind == AccessKind::Read && r.array == "c")
            .count();
        assert_eq!(x_reads, 1);
        assert!(c_reads >= 2);
    }

    #[test]
    fn increment_tagged() {
        let refs = refs_of(
            r#"
subroutine t(n, u, a)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  real, intent(in) :: a
  integer :: i
  !$omp parallel do shared(u)
  do i = 1, n
    u(2 * i) = u(2 * i) + 2.0 * a
  end do
end subroutine
"#,
        );
        let w = refs.iter().find(|r| r.kind == AccessKind::Write).unwrap();
        assert_eq!(w.inc, IncRole::IncrementWrite);
        let self_read = refs
            .iter()
            .find(|r| r.kind == AccessKind::Read && r.array == "u")
            .unwrap();
        assert_eq!(self_read.inc, IncRole::IncrementRead);
    }

    #[test]
    fn plain_assignment_not_tagged() {
        let refs = refs_of(
            r#"
subroutine t(n, u, v)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  real, intent(in) :: v(n)
  integer :: i
  !$omp parallel do shared(u, v)
  do i = 1, n
    u(i) = v(i) * 2.0
  end do
end subroutine
"#,
        );
        assert!(refs.iter().all(|r| r.inc == IncRole::None));
    }

    #[test]
    fn condition_and_bound_reads_collected() {
        let refs = refs_of(
            r#"
subroutine t(n, u, e2n, m)
  integer, intent(in) :: n, m
  real, intent(inout) :: u(n)
  integer, intent(in) :: e2n(n)
  integer :: i, j
  !$omp parallel do shared(u, e2n)
  do i = 1, n
    if (e2n(i) .ne. i) then
      do j = 1, e2n(i)
        u(j) = u(j) + 1.0
      end do
    end if
  end do
end subroutine
"#,
        );
        // e2n read in the condition and in the inner loop bound.
        let e2n_reads = refs
            .iter()
            .filter(|r| r.array == "e2n" && r.kind == AccessKind::Read)
            .count();
        assert!(e2n_reads >= 2);
    }
}
