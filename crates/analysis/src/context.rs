//! Control contexts (paper §5.1).
//!
//! A *context* captures the set of control decisions that lead to executing
//! an instruction. Two CFG nodes share a context when they are *control
//! equivalent* (`a dom b ∧ b pdom a`, in either orientation); context `C₂`
//! is *included* in `C₁` when any iteration executing an instruction of
//! `C₂` necessarily executes the instructions of `C₁` — derived here from
//! the dominator / post-dominator trees exactly as the paper describes.
//!
//! Knowledge extraction attaches a fact from a reference pair to the
//! innermost of the two references' contexts when they are comparable (the
//! outermost context guaranteed to execute both); exploitation for an
//! adjoint pair may only use facts attached to contexts that include *both*
//! primal contexts (the "common root" and everything above it).

use crate::cfg::{Cfg, NodeId, ENTRY};
use crate::dom::{dominators, post_dominators, DomTree};

/// Dense context identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u32);

/// The context partition of a CFG.
#[derive(Debug)]
pub struct Contexts {
    /// Context of each CFG node.
    pub ctx_of: Vec<CtxId>,
    /// Number of contexts.
    pub count: usize,
    /// `incl[a][b]` ⇔ context `a` is included in context `b`
    /// (`a ⊆ b`: executing `a` implies executing `b`).
    incl: Vec<Vec<bool>>,
    /// Context of the entry node (the body's root context).
    pub root: CtxId,
}

impl Contexts {
    /// Compute the context partition of `cfg`.
    pub fn build(cfg: &Cfg<'_>) -> Contexts {
        let dom = dominators(cfg);
        let pdom = post_dominators(cfg);
        Contexts::from_trees(cfg, &dom, &pdom)
    }

    /// Compute contexts from precomputed trees (lets callers reuse them).
    pub fn from_trees(cfg: &Cfg<'_>, dom: &DomTree, pdom: &DomTree) -> Contexts {
        let n = cfg.len();
        // Control equivalence: a ~ b ⇔ (a dom b ∧ b pdom a) ∨ symmetric.
        let equiv = |a: NodeId, b: NodeId| -> bool {
            (dom.dominates(a, b) && pdom.dominates(b, a))
                || (dom.dominates(b, a) && pdom.dominates(a, b))
        };
        // Union-find to close the relation into a partition.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if equiv(a, b) {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        // Dense context ids.
        let mut ids: Vec<Option<CtxId>> = vec![None; n];
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        let mut ctx_of = vec![CtxId(0); n];
        for (node, slot) in ctx_of.iter_mut().enumerate() {
            let rep = find(&mut parent, node);
            let id = match ids[rep] {
                Some(id) => id,
                None => {
                    let id = CtxId(members.len() as u32);
                    ids[rep] = Some(id);
                    members.push(Vec::new());
                    id
                }
            };
            *slot = id;
            members[id.0 as usize].push(node);
        }
        let count = members.len();

        // Node-level inclusion: executing `a` implies executing `b` when
        // `b` dominates or post-dominates `a`. Lift to contexts with a
        // universal check over members — conservative (may miss inclusions
        // on irreducible graphs) and therefore sound.
        let node_incl =
            |a: NodeId, b: NodeId| -> bool { dom.dominates(b, a) || pdom.dominates(b, a) };
        let mut incl = vec![vec![false; count]; count];
        for (ca, ma) in members.iter().enumerate() {
            for (cb, mb) in members.iter().enumerate() {
                incl[ca][cb] = ma.iter().all(|&a| mb.iter().all(|&b| node_incl(a, b)));
            }
        }
        let root = ctx_of[ENTRY];
        Contexts {
            ctx_of,
            count,
            incl,
            root,
        }
    }

    /// Is context `a` included in context `b` (`a ⊆ b`)?
    pub fn included(&self, a: CtxId, b: CtxId) -> bool {
        self.incl[a.0 as usize][b.0 as usize]
    }

    /// Where to attach knowledge from a reference pair with contexts
    /// `(c1, c2)`: the innermost of the two when comparable (the outermost
    /// context that must execute both references), `None` otherwise (no
    /// control certainly executes both — paper §5.1).
    pub fn knowledge_site(&self, c1: CtxId, c2: CtxId) -> Option<CtxId> {
        if c1 == c2 || self.included(c1, c2) {
            Some(c1)
        } else if self.included(c2, c1) {
            Some(c2)
        } else {
            None
        }
    }

    /// Contexts whose knowledge may be used when testing an adjoint pair
    /// whose primal references live in `(c1, c2)`: every context including
    /// both (the common root and its ancestors).
    pub fn usable_for(&self, c1: CtxId, c2: CtxId) -> Vec<CtxId> {
        (0..self.count)
            .map(|k| CtxId(k as u32))
            .filter(|&c| self.included(c1, c) && self.included(c2, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NodeKind;
    use formad_ir::{parse_program, Stmt};

    fn body_of(src: &str) -> Vec<Stmt> {
        parse_program(src).unwrap().body
    }

    fn cfg_and_ctx(body: &[Stmt]) -> (Cfg<'_>, Contexts) {
        let cfg = Cfg::build(body);
        let ctx = Contexts::build(&cfg);
        (cfg, ctx)
    }

    #[test]
    fn straight_line_single_context() {
        let body = body_of(
            r#"
subroutine t(a)
  real, intent(inout) :: a
  a = 1.0
  a = 2.0
end subroutine
"#,
        );
        let (cfg, ctx) = cfg_and_ctx(&body);
        // Entry, exit, and both statements all share the root context.
        for n in 0..cfg.len() {
            assert_eq!(ctx.ctx_of[n], ctx.root);
        }
        assert_eq!(ctx.count, 1);
    }

    #[test]
    fn if_arms_strictly_included_in_root() {
        let body = body_of(
            r#"
subroutine t(a, i, j)
  real, intent(inout) :: a
  integer, intent(in) :: i, j
  if (i .ne. j) then
    a = 1.0
  else
    a = 2.0
  end if
end subroutine
"#,
        );
        let (cfg, ctx) = cfg_and_ctx(&body);
        let arms: Vec<_> = (0..cfg.len())
            .filter(|&n| matches!(cfg.nodes[n], NodeKind::Simple(_)))
            .collect();
        assert_eq!(arms.len(), 2);
        let (c1, c2) = (ctx.ctx_of[arms[0]], ctx.ctx_of[arms[1]]);
        assert_ne!(c1, ctx.root);
        assert_ne!(c2, ctx.root);
        assert_ne!(c1, c2);
        assert!(ctx.included(c1, ctx.root));
        assert!(ctx.included(c2, ctx.root));
        assert!(!ctx.included(ctx.root, c1));
        // The two arms are incomparable.
        assert!(!ctx.included(c1, c2));
        assert!(!ctx.included(c2, c1));
        // Knowledge from an arm-vs-root pair attaches to the arm.
        assert_eq!(ctx.knowledge_site(c1, ctx.root), Some(c1));
        // Knowledge from the two incomparable arms attaches nowhere.
        assert_eq!(ctx.knowledge_site(c1, c2), None);
        // A query with refs in the two arms may only use root knowledge.
        assert_eq!(ctx.usable_for(c1, c2), vec![ctx.root]);
        // A query within one arm may use that arm's and the root's facts.
        let mut usable = ctx.usable_for(c1, c1);
        usable.sort();
        let mut expect = vec![c1, ctx.root];
        expect.sort();
        assert_eq!(usable, expect);
    }

    #[test]
    fn then_only_if_guard_included() {
        let body = body_of(
            r#"
subroutine t(a, i, j)
  real, intent(inout) :: a
  integer, intent(in) :: i, j
  a = 0.0
  if (i .ne. j) then
    a = 1.0
  end if
end subroutine
"#,
        );
        let (cfg, ctx) = cfg_and_ctx(&body);
        let stmts: Vec<_> = (0..cfg.len())
            .filter(|&n| matches!(cfg.nodes[n], NodeKind::Simple(_)))
            .collect();
        // First statement is root-context, the guarded one is included.
        let outer = ctx.ctx_of[stmts[0]];
        let guarded = ctx.ctx_of[stmts[1]];
        assert_eq!(outer, ctx.root);
        assert_ne!(guarded, ctx.root);
        assert!(ctx.included(guarded, ctx.root));
    }

    #[test]
    fn inner_loop_body_included() {
        let body = body_of(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: j
  u(1) = 0.0
  do j = 1, n
    u(j) = u(j) + 1.0
  end do
end subroutine
"#,
        );
        let (cfg, ctx) = cfg_and_ctx(&body);
        let head = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::LoopHead(_)))
            .unwrap();
        let inner = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::Simple(s) if s.as_increment().is_some()))
            .unwrap();
        assert_eq!(ctx.ctx_of[head], ctx.root);
        let body_ctx = ctx.ctx_of[inner];
        assert_ne!(body_ctx, ctx.root);
        assert!(ctx.included(body_ctx, ctx.root));
        assert!(!ctx.included(ctx.root, body_ctx));
    }

    #[test]
    fn inclusion_is_reflexive_and_transitive() {
        let body = body_of(
            r#"
subroutine t(n, u, i, j)
  integer, intent(in) :: n, i, j
  real, intent(inout) :: u(n)
  if (i .ne. j) then
    if (i .lt. n) then
      u(i) = 1.0
    end if
  end if
end subroutine
"#,
        );
        let (_cfg, ctx) = cfg_and_ctx(&body);
        for a in 0..ctx.count {
            let a = CtxId(a as u32);
            assert!(ctx.included(a, a));
            for b in 0..ctx.count {
                let b = CtxId(b as u32);
                for c in 0..ctx.count {
                    let c = CtxId(c as u32);
                    if ctx.included(a, b) && ctx.included(b, c) {
                        assert!(ctx.included(a, c));
                    }
                }
            }
        }
        // Nested ifs form a chain of three contexts.
        assert_eq!(ctx.count, 3);
    }
}
