//! Instance numbering of possibly-overwritten scalar variables
//! (paper §5.2).
//!
//! Two uses of a variable get the same instance number exactly when they
//! are reached by the same set of definitions (Def-Use chains). A merge of
//! different control flows, or a loop that overwrites a variable, yields a
//! fresh definition set and hence a fresh instance — so the proof system
//! never conflates two textually identical variable names that may hold
//! different values.

use std::collections::{BTreeSet, HashMap};

use formad_ir::{LValue, Stmt};

use crate::cfg::{Cfg, NodeId, NodeKind, ENTRY};

/// Instance number of a variable at a program point.
pub type InstanceId = u32;

/// Result of the reaching-definitions pass.
#[derive(Debug)]
pub struct Instances {
    /// `(node, var) → instance` for every node where `var` is visible.
    at: HashMap<(NodeId, String), InstanceId>,
    /// Per-variable intern table of definition sets.
    interned: HashMap<String, Vec<BTreeSet<NodeId>>>,
}

impl Instances {
    /// Instance of `var` for *uses* occurring at `node`. Variables never
    /// assigned in the region have instance 0 everywhere.
    pub fn instance(&self, node: NodeId, var: &str) -> InstanceId {
        self.at.get(&(node, var.to_string())).copied().unwrap_or(0)
    }

    /// Number of distinct instances of `var` in the region.
    pub fn instance_count(&self, var: &str) -> usize {
        self.interned.get(var).map(|v| v.len()).unwrap_or(1)
    }

    /// Run reaching definitions over `cfg`.
    ///
    /// Definition points: scalar assignments (`x = ...`), `pop(x)`, and
    /// loop heads (which define their counter). The entry node carries a
    /// virtual definition of every variable, so instance 0 always denotes
    /// "the value on entry to the region".
    pub fn analyze(cfg: &Cfg<'_>) -> Instances {
        // Which variable does each node define, if any?
        let defs: Vec<Option<String>> = cfg
            .nodes
            .iter()
            .map(|n| match n {
                NodeKind::Simple(Stmt::Assign {
                    lhs: LValue::Var(v),
                    ..
                })
                | NodeKind::Simple(Stmt::Pop(LValue::Var(v)))
                | NodeKind::Simple(Stmt::AtomicAdd {
                    lhs: LValue::Var(v),
                    ..
                }) => Some(v.clone()),
                NodeKind::LoopHead(l) => Some(l.var.clone()),
                _ => None,
            })
            .collect();

        let vars: BTreeSet<String> = defs.iter().flatten().cloned().collect();

        // IN/OUT: var → set of defining nodes. ENTRY is the virtual def.
        type Env = HashMap<String, BTreeSet<NodeId>>;
        let entry_env: Env = vars
            .iter()
            .map(|v| (v.clone(), BTreeSet::from([ENTRY])))
            .collect();

        let n = cfg.len();
        let mut out: Vec<Env> = vec![Env::new(); n];
        out[ENTRY] = entry_env;
        let rpo = cfg.reverse_postorder();

        let mut ins: Vec<Env> = vec![Env::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &rpo {
                if node == ENTRY {
                    continue;
                }
                // IN = union of predecessor OUTs.
                let mut env: Env = Env::new();
                for &p in &cfg.preds[node] {
                    for (v, set) in &out[p] {
                        env.entry(v.clone())
                            .or_default()
                            .extend(set.iter().copied());
                    }
                }
                ins[node] = env.clone();
                // OUT = gen ∪ (IN − kill).
                if let Some(v) = &defs[node] {
                    env.insert(v.clone(), BTreeSet::from([node]));
                }
                if env != out[node] {
                    out[node] = env;
                    changed = true;
                }
            }
        }

        // Intern reaching sets into per-variable instance numbers, with
        // instance 0 reserved for the entry-only set.
        let mut interned: HashMap<String, Vec<BTreeSet<NodeId>>> = HashMap::new();
        for v in &vars {
            interned.insert(v.clone(), vec![BTreeSet::from([ENTRY])]);
        }
        let mut at = HashMap::new();
        for (node, ins_node) in ins.iter().enumerate() {
            for v in &vars {
                let set = match ins_node.get(v) {
                    Some(s) if !s.is_empty() => s.clone(),
                    _ => BTreeSet::from([ENTRY]),
                };
                let table = interned.get_mut(v).expect("var registered");
                let id = match table.iter().position(|s| *s == set) {
                    Some(k) => k as InstanceId,
                    None => {
                        table.push(set);
                        (table.len() - 1) as InstanceId
                    }
                };
                at.insert((node, v.clone()), id);
            }
        }
        Instances { at, interned }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_ir::parse_program;

    fn analyze(src: &str) -> (Vec<Stmt>,) {
        (parse_program(src).unwrap().body,)
    }

    /// Find the node of the k-th Simple statement (in node order).
    fn nth_simple(cfg: &Cfg<'_>, k: usize) -> NodeId {
        (0..cfg.len())
            .filter(|&n| matches!(cfg.nodes[n], NodeKind::Simple(_)))
            .nth(k)
            .unwrap()
    }

    #[test]
    fn unmodified_var_has_instance_zero() {
        let (body,) = analyze(
            r#"
subroutine t(n, u, w)
  integer, intent(in) :: n, w
  real, intent(inout) :: u(n)
  u(w) = 1.0
  u(w + 1) = 2.0
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let inst = Instances::analyze(&cfg);
        assert_eq!(inst.instance(nth_simple(&cfg, 0), "w"), 0);
        assert_eq!(inst.instance(nth_simple(&cfg, 1), "w"), 0);
        assert_eq!(inst.instance_count("w"), 1);
    }

    #[test]
    fn overwrite_creates_new_instance() {
        let (body,) = analyze(
            r#"
subroutine t(n, u, w)
  integer, intent(in) :: n
  integer :: w
  real, intent(inout) :: u(n)
  u(w) = 1.0
  w = w + 1
  u(w) = 2.0
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let inst = Instances::analyze(&cfg);
        let use1 = inst.instance(nth_simple(&cfg, 0), "w");
        let use2 = inst.instance(nth_simple(&cfg, 2), "w");
        assert_eq!(use1, 0);
        assert_ne!(use1, use2);
    }

    #[test]
    fn merge_of_distinct_defs_gets_third_instance() {
        let (body,) = analyze(
            r#"
subroutine t(n, u, i, j)
  integer, intent(in) :: n, i, j
  integer :: w
  real, intent(inout) :: u(n)
  if (i .ne. j) then
    w = 1
  else
    w = 2
  end if
  u(w) = 1.0
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let inst = Instances::analyze(&cfg);
        // Node order: w=1, w=2, u(w)=...
        let def1 = nth_simple(&cfg, 0);
        let def2 = nth_simple(&cfg, 1);
        let use_node = nth_simple(&cfg, 2);
        let at_use = inst.instance(use_node, "w");
        // The merged instance differs from both arms' outgoing defs and
        // from the entry instance.
        assert_ne!(at_use, 0);
        // Uses *at* the defining nodes still see the incoming instance.
        assert_eq!(inst.instance(def1, "w"), 0);
        assert_eq!(inst.instance(def2, "w"), 0);
        assert_eq!(inst.instance_count("w"), 2); // entry set + merged {d1,d2} (singleton sets never reach a use)
    }

    #[test]
    fn loop_entry_renews_instance() {
        let (body,) = analyze(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  integer :: j, w
  real, intent(inout) :: u(n)
  w = 0
  do j = 1, n
    u(w) = 1.0
    w = w + 1
  end do
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let inst = Instances::analyze(&cfg);
        // Use inside the loop sees {w=0 def, w=w+1 def} merged — a fresh
        // instance distinct from both straight-line instances.
        let use_node = (0..cfg.len())
            .find(|&n| {
                matches!(cfg.nodes[n], NodeKind::Simple(Stmt::Assign { ref lhs, .. })
                    if lhs.name() == "u")
            })
            .unwrap();
        let in_loop = inst.instance(use_node, "w");
        assert_ne!(in_loop, 0);
        // And the increment's own use sees the same merged instance.
        let incr_node = (0..cfg.len())
            .find(|&n| {
                matches!(cfg.nodes[n], NodeKind::Simple(Stmt::Assign { ref lhs, .. })
                    if lhs.name() == "w" )
                    && cfg.preds[n].len() == 1
                    && matches!(cfg.nodes[cfg.preds[n][0]], NodeKind::Simple(_))
            })
            .unwrap();
        assert_eq!(inst.instance(incr_node, "w"), in_loop);
    }

    #[test]
    fn loop_counter_defined_by_head() {
        let (body,) = analyze(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  integer :: j
  real, intent(inout) :: u(n)
  do j = 1, n
    u(j) = 1.0
  end do
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let inst = Instances::analyze(&cfg);
        let use_node = nth_simple(&cfg, 0);
        // Inside the loop, j's reaching def is exactly the head: a single
        // fresh instance (not the entry instance).
        assert_ne!(inst.instance(use_node, "j"), 0);
        assert_eq!(inst.instance_count("j"), 3); // entry, {head}, {entry,head} at the head itself
    }
}
