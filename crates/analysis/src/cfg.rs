//! Control-flow graph construction over the structured IR.
//!
//! The FormAD analyses (contexts §5.1, instances §5.2) are defined on a
//! CFG, like in the paper's Tapenade implementation, rather than directly
//! on the syntax tree — dominator/post-dominator relations then give the
//! context inclusion ordering for free.

use formad_ir::{BoolExpr, ForLoop, Stmt};

/// Dense CFG node identifier.
pub type NodeId = usize;

/// What a CFG node represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind<'a> {
    /// Unique entry node (id 0).
    Entry,
    /// Unique exit node (id 1).
    Exit,
    /// Simple statement: `Assign`, `AtomicAdd`, `Push`, or `Pop`.
    Simple(&'a Stmt),
    /// `if` condition evaluation.
    Branch(&'a BoolExpr),
    /// Loop head: evaluates bounds, defines the loop counter, decides
    /// whether to run another iteration.
    LoopHead(&'a ForLoop),
    /// Structural join point after an `if`.
    Join,
}

/// A control-flow graph over borrowed statements.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// Node payloads; `nodes[0]` is `Entry`, `nodes[1]` is `Exit`.
    pub nodes: Vec<NodeKind<'a>>,
    /// Successor adjacency.
    pub succs: Vec<Vec<NodeId>>,
    /// Predecessor adjacency.
    pub preds: Vec<Vec<NodeId>>,
}

/// Entry node id.
pub const ENTRY: NodeId = 0;
/// Exit node id.
pub const EXIT: NodeId = 1;

impl<'a> Cfg<'a> {
    /// Build the CFG of a statement list (typically a parallel-loop body).
    pub fn build(body: &'a [Stmt]) -> Cfg<'a> {
        let mut cfg = Cfg {
            nodes: vec![NodeKind::Entry, NodeKind::Exit],
            succs: vec![Vec::new(), Vec::new()],
            preds: vec![Vec::new(), Vec::new()],
        };
        let last = cfg.lower_seq(body, ENTRY);
        cfg.edge(last, EXIT);
        cfg
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has only entry/exit.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 2
    }

    fn add(&mut self, kind: NodeKind<'a>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(kind);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
            self.preds[to].push(from);
        }
    }

    /// Lower a statement sequence starting after `pred`; returns the node
    /// that flow leaves the sequence from.
    fn lower_seq(&mut self, body: &'a [Stmt], mut pred: NodeId) -> NodeId {
        for s in body {
            pred = self.lower_stmt(s, pred);
        }
        pred
    }

    fn lower_stmt(&mut self, s: &'a Stmt, pred: NodeId) -> NodeId {
        match s {
            Stmt::Assign { .. } | Stmt::AtomicAdd { .. } | Stmt::Push(_) | Stmt::Pop(_) => {
                let n = self.add(NodeKind::Simple(s));
                self.edge(pred, n);
                n
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.add(NodeKind::Branch(cond));
                self.edge(pred, c);
                let join = self.add(NodeKind::Join);
                let then_end = self.lower_seq(then_body, c);
                self.edge(then_end, join);
                if else_body.is_empty() {
                    self.edge(c, join);
                } else {
                    let else_end = self.lower_seq(else_body, c);
                    self.edge(else_end, join);
                }
                join
            }
            Stmt::For(l) => {
                let head = self.add(NodeKind::LoopHead(l));
                self.edge(pred, head);
                let body_end = self.lower_seq(&l.body, head);
                // Back edge to the head; fall-through leaves via the head.
                self.edge(body_end, head);
                head
            }
        }
    }

    /// Reverse postorder from the entry (every node is reachable by
    /// construction).
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.len()];
        let mut order = Vec::with_capacity(self.len());
        // Iterative DFS with explicit stack to avoid recursion limits.
        let mut stack: Vec<(NodeId, usize)> = vec![(ENTRY, 0)];
        visited[ENTRY] = true;
        while let Some((node, idx)) = stack.pop() {
            if idx < self.succs[node].len() {
                stack.push((node, idx + 1));
                let next = self.succs[node][idx];
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
            }
        }
        order.reverse();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_ir::parse_program;

    fn body_of(src: &str) -> Vec<Stmt> {
        parse_program(src).unwrap().body
    }

    #[test]
    fn straight_line() {
        let body = body_of(
            r#"
subroutine t(a, b)
  real, intent(inout) :: a, b
  a = 1.0
  b = 2.0
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        // entry, exit, two statements.
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.succs[ENTRY], vec![2]);
        assert_eq!(cfg.succs[2], vec![3]);
        assert_eq!(cfg.succs[3], vec![EXIT]);
    }

    #[test]
    fn if_else_diamond() {
        let body = body_of(
            r#"
subroutine t(a, i, j)
  real, intent(inout) :: a
  integer, intent(in) :: i, j
  if (i .ne. j) then
    a = 1.0
  else
    a = 2.0
  end if
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        // entry, exit, branch, join, 2 stmts.
        assert_eq!(cfg.len(), 6);
        let branch = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::Branch(_)))
            .unwrap();
        assert_eq!(cfg.succs[branch].len(), 2);
        let join = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::Join))
            .unwrap();
        assert_eq!(cfg.preds[join].len(), 2);
    }

    #[test]
    fn if_without_else_edges_to_join() {
        let body = body_of(
            r#"
subroutine t(a, i, j)
  real, intent(inout) :: a
  integer, intent(in) :: i, j
  if (i .ne. j) then
    a = 1.0
  end if
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let branch = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::Branch(_)))
            .unwrap();
        let join = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::Join))
            .unwrap();
        assert!(cfg.succs[branch].contains(&join));
    }

    #[test]
    fn loop_back_edge() {
        let body = body_of(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i
  do i = 1, n
    u(i) = 0.0
  end do
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let head = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::LoopHead(_)))
            .unwrap();
        let stmt = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], NodeKind::Simple(_)))
            .unwrap();
        assert!(cfg.succs[head].contains(&stmt));
        assert!(cfg.succs[stmt].contains(&head)); // back edge
        assert!(cfg.succs[head].contains(&EXIT));
    }

    #[test]
    fn reverse_postorder_starts_at_entry_visits_all() {
        let body = body_of(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i, j
  do i = 1, n
    if (i .ne. 1) then
      u(i) = 0.0
    end if
    do j = 1, n
      u(j) = u(j) + 1.0
    end do
  end do
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.len(), cfg.len());
        assert_eq!(rpo[0], ENTRY);
        // Every node appears exactly once.
        let mut sorted = rpo.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cfg.len());
    }
}
