//! Cross-analysis integration: contexts, instances, activity, and
//! reference collection working together on realistic loop bodies.

use formad_analysis::{collect_refs, AccessKind, Activity, Cfg, Contexts, Instances, NodeKind};
use formad_ir::parse_program;

#[test]
fn green_gauss_shape_contexts_and_instances() {
    let p = parse_program(
        r#"
subroutine gg(ne, nn, e2n, sij, dv, grad)
  integer, intent(in) :: ne, nn
  integer, intent(in) :: e2n(2, ne)
  real, intent(in) :: sij(ne)
  real, intent(in) :: dv(nn)
  real, intent(inout) :: grad(nn)
  integer :: ie, i, j
  real :: dvface
  !$omp parallel do private(i, j, dvface) shared(grad, dv, sij, e2n)
  do ie = 1, ne
    i = e2n(1, ie)
    j = e2n(2, ie)
    if (i .ne. j) then
      dvface = 0.5 * (dv(i) + dv(j))
      grad(i) = grad(i) + dvface * sij(ie)
      grad(j) = grad(j) - dvface * sij(ie)
    end if
  end do
end subroutine
"#,
    )
    .unwrap();
    let l = &p.parallel_loops()[0];
    let cfg = Cfg::build(&l.body);
    let ctx = Contexts::build(&cfg);
    let inst = Instances::analyze(&cfg);
    let refs = collect_refs(&cfg);

    // The gathers are root-context; the guarded updates live in a child.
    let gather_nodes: Vec<_> = (0..cfg.len())
        .filter(|&n| {
            matches!(cfg.nodes[n], NodeKind::Simple(formad_ir::Stmt::Assign { ref lhs, .. })
                if lhs.name() == "i" || lhs.name() == "j")
        })
        .collect();
    assert_eq!(gather_nodes.len(), 2);
    for &g in &gather_nodes {
        assert_eq!(ctx.ctx_of[g], ctx.root);
    }
    let grad_write = refs
        .iter()
        .find(|r| r.array == "grad" && r.kind == AccessKind::Write)
        .unwrap();
    let guard_ctx = ctx.ctx_of[grad_write.node];
    assert_ne!(guard_ctx, ctx.root);
    assert!(ctx.included(guard_ctx, ctx.root));

    // The uses of i inside the guard see the instance defined by the
    // gather, not the entry instance.
    assert_ne!(inst.instance(grad_write.node, "i"), 0);
    // dv and sij are read-only; grad has both reads and writes.
    assert!(refs
        .iter()
        .all(|r| r.array != "dv" || r.kind == AccessKind::Read));
    assert!(refs
        .iter()
        .any(|r| r.array == "grad" && r.kind == AccessKind::Write));

    // Activity: dv → grad flows; sij inactive as an independent… rather:
    // differentiate grad w.r.t. dv makes both active, sij varied? sij is
    // an input read in a product: varied(sij)=false (not independent).
    let act = Activity::analyze(&p, &["dv".into()], &["grad".into()]);
    assert!(act.is_active("dv"));
    assert!(act.is_active("grad"));
    assert!(act.is_active("dvface"));
    assert!(!act.is_active("sij"));
}

#[test]
fn usable_knowledge_respects_branch_structure() {
    let p = parse_program(
        r#"
subroutine t(n, a, b, u, v, w)
  integer, intent(in) :: n
  integer, intent(in) :: a(n), b(n)
  real, intent(inout) :: u(n), v(n), w(n)
  integer :: i
  !$omp parallel do shared(a, b, u, v, w)
  do i = 1, n
    if (a(i) .gt. 0) then
      u(i) = 1.0
      if (b(i) .gt. 0) then
        v(i) = 2.0
      end if
    else
      w(i) = 3.0
    end if
  end do
end subroutine
"#,
    )
    .unwrap();
    let l = &p.parallel_loops()[0];
    let cfg = Cfg::build(&l.body);
    let ctx = Contexts::build(&cfg);
    let node_of = |name: &str| -> usize {
        (0..cfg.len())
            .find(|&n| {
                matches!(cfg.nodes[n], NodeKind::Simple(formad_ir::Stmt::Assign { ref lhs, .. })
                    if lhs.name() == name)
            })
            .unwrap()
    };
    let cu = ctx.ctx_of[node_of("u")];
    let cv = ctx.ctx_of[node_of("v")];
    let cw = ctx.ctx_of[node_of("w")];
    // Chain: v ⊂ u ⊂ root; w ⊂ root; u and w incomparable.
    assert!(ctx.included(cv, cu));
    assert!(ctx.included(cu, ctx.root));
    assert!(ctx.included(cw, ctx.root));
    assert!(!ctx.included(cu, cw) && !ctx.included(cw, cu));
    // Knowledge from (v-site, v-site) lands at cv; it is usable for a
    // (cv, cv) query but not for a (cw, cw) one.
    assert!(ctx.usable_for(cv, cv).contains(&cv));
    assert!(!ctx.usable_for(cw, cw).contains(&cv));
    // The common root of (cu, cw) queries is exactly the root.
    let common = ctx.usable_for(cu, cw);
    assert_eq!(common, vec![ctx.root]);
    // Knowledge placement follows the innermost-of-comparable rule.
    assert_eq!(ctx.knowledge_site(cv, cu), Some(cv));
    assert_eq!(ctx.knowledge_site(cu, cw), None);
}

#[test]
fn instances_distinguish_gather_rebinding() {
    let p = parse_program(
        r#"
subroutine t(n, c, u)
  integer, intent(in) :: n
  integer, intent(in) :: c(n)
  real, intent(inout) :: u(n + 1)
  integer :: i, k
  !$omp parallel do shared(c, u) private(k)
  do i = 1, n
    k = c(i)
    u(k) = 1.0
    k = k + 1
    u(k) = 2.0
  end do
end subroutine
"#,
    )
    .unwrap();
    let l = &p.parallel_loops()[0];
    let cfg = Cfg::build(&l.body);
    let inst = Instances::analyze(&cfg);
    let refs = collect_refs(&cfg);
    let u_writes: Vec<_> = refs
        .iter()
        .filter(|r| r.array == "u" && r.kind == AccessKind::Write)
        .collect();
    assert_eq!(u_writes.len(), 2);
    // The two writes use k at *different* instances — the analysis must
    // not conflate u(k) before and after the k rebinding.
    let i1 = inst.instance(u_writes[0].node, "k");
    let i2 = inst.instance(u_writes[1].node, "k");
    assert_ne!(i1, i2);
}

#[test]
fn activity_through_multiple_hops_and_dead_ends() {
    let p = parse_program(
        r#"
subroutine hops(n, x, t1, t2, dead, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: t1(n), t2(n), dead(n)
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    t1(i) = 2.0 * x(i)
    t2(i) = t1(i) + 1.0
    dead(i) = t2(i) * 3.0
    y(i) = t2(i) * t2(i)
  end do
end subroutine
"#,
    )
    .unwrap();
    let act = Activity::analyze(&p, &["x".into()], &["y".into()]);
    for v in ["x", "t1", "t2", "y"] {
        assert!(act.is_active(v), "{v} should be active");
    }
    // dead is varied but not useful.
    assert!(act.varied.contains("dead"));
    assert!(!act.useful.contains("dead"));
    assert!(!act.is_active("dead"));
}
