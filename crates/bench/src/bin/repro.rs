//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro table1            Table 1 (analysis statistics)
//! repro fig3 | fig4       absolute time, small/large stencil
//! repro fig5 | fig6       speedup, small/large stencil
//! repro fig7 | fig8       absolute time / speedup, GFMC
//! repro fig9 | fig10      absolute time / speedup, Green-Gauss
//! repro lbm               §7.3 LBM analysis narrative
//! repro bench-prover [--iters K] [--jobs N] [--out PATH]
//!                         prover throughput: the Table-1 suite analyzed
//!                         sequential-uncached vs parallel+cached; JSON
//!                         written to PATH (default BENCH_prover.json),
//!                         plus a traced per-phase timing attribution to
//!                         PATH with a `_phases` suffix
//!                         (default BENCH_prover_phases.json)
//! repro bench-kernels [--iters K] [--threads LIST] [--smoke] [--out PATH]
//!                         real wall-clock of the four-version protocol on
//!                         both native backends (register bytecode and
//!                         AOT-compiled kernels), bitwise-verified against
//!                         the simulated interpreter, with the interpreter
//!                         dispatch overhead calibrated from the measured
//!                         data; JSON written to PATH (default
//!                         BENCH_kernels.json)
//! repro all [outdir]      everything; CSVs written to outdir (default
//!                         repro_out/)
//! repro --scale big ...   closer-to-paper problem sizes (slower)
//! ```
//!
//! Runtimes are simulated giga-cycles on the `formad-machine`
//! multiprocessor (see DESIGN.md for the single-core-host substitution).

use std::env;
use std::fs;
use std::path::Path;

use formad_bench::{
    gfmc_figure, green_gauss_figure, lbm_report, stencil_figure, table1, FigureData, PAPER_THREADS,
};

/// Problem sizes. `small` keeps the full protocol under a couple of
/// minutes of interpretation on one core; `big` approaches the paper's
/// sizes more closely.
#[derive(Debug, Clone, Copy)]
struct Scale {
    stencil_n: usize,
    stencil_sweeps: usize,
    gfmc_ns: usize,
    gfmc_reps: usize,
    gg_nodes: usize,
    gg_reps: usize,
}

const SMALL: Scale = Scale {
    stencil_n: 20_000,
    stencil_sweeps: 2,
    gfmc_ns: 48,
    gfmc_reps: 2,
    gg_nodes: 10_000,
    gg_reps: 2,
};

const BIG: Scale = Scale {
    stencil_n: 200_000,
    stencil_sweeps: 4,
    gfmc_ns: 96,
    gfmc_reps: 4,
    gg_nodes: 50_000,
    gg_reps: 4,
};

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let mut scale = SMALL;
    if let Some(k) = args.iter().position(|a| a == "--scale") {
        let v = args.get(k + 1).cloned().unwrap_or_default();
        args.drain(k..=k + 1);
        match v.as_str() {
            "big" => scale = BIG,
            "small" => {}
            other => {
                eprintln!("unknown scale `{other}` (small|big)");
                std::process::exit(2);
            }
        }
    }
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("all");
    match cmd {
        "table1" => print!("{}", formad_bench::experiments::table1_text(&table1())),
        "ablations" => print!(
            "{}",
            formad_bench::ablation_text(&formad_bench::ablation_grid())
        ),
        "lbm" => print!("{}", lbm_report()),
        "bench-prover" => bench_prover(&args[1..]),
        "bench-kernels" => bench_kernels(&args[1..]),
        "fig3" => print_fig(
            &small_stencil(scale),
            Kind::Absolute,
            "Figure 3: absolute time, small stencil",
        ),
        "fig5" => print_fig(
            &small_stencil(scale),
            Kind::Speedup,
            "Figure 5: speedup, small stencil",
        ),
        "fig4" => print_fig(
            &large_stencil(scale),
            Kind::Absolute,
            "Figure 4: absolute time, large stencil",
        ),
        "fig6" => print_fig(
            &large_stencil(scale),
            Kind::Speedup,
            "Figure 6: speedup, large stencil",
        ),
        "fig7" => print_fig(
            &gfmc(scale),
            Kind::Absolute,
            "Figure 7: absolute time, GFMC",
        ),
        "fig8" => print_fig(&gfmc(scale), Kind::Speedup, "Figure 8: speedup, GFMC"),
        "fig9" => print_fig(
            &green_gauss(scale),
            Kind::Absolute,
            "Figure 9: absolute time, Green Gauss Gradients",
        ),
        "fig10" => print_fig(
            &green_gauss(scale),
            Kind::Speedup,
            "Figure 10: speedup, Green Gauss Gradients",
        ),
        "all" => {
            let outdir = args.get(1).cloned().unwrap_or_else(|| "repro_out".into());
            all(scale, Path::new(&outdir));
        }
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!(
                "commands: table1 ablations lbm bench-prover bench-kernels fig3..fig10 \
                 all [outdir] [--scale small|big]"
            );
            std::process::exit(2);
        }
    }
}

/// `bench-prover [--iters K] [--jobs N] [--out PATH]` — measure the
/// parallel+cached prover against the sequential seed path and record
/// the result as JSON.
fn bench_prover(rest: &[String]) {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut iters = 12usize;
    // Default the worker count to what the host can actually run: asking
    // for more threads than cores makes the "optimized" configuration
    // *slower* than the sequential baseline (contended oversubscription)
    // and records an inverted speedup. Explicit `--jobs` is honored.
    let mut jobs = host.min(4);
    let mut out = "BENCH_prover.json".to_string();
    let mut k = 0;
    while k < rest.len() {
        let need = |k: usize| {
            rest.get(k + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} expects a value", rest[k]);
                std::process::exit(2);
            })
        };
        match rest[k].as_str() {
            "--iters" => {
                iters = need(k).parse().unwrap_or_else(|_| {
                    eprintln!("--iters expects an integer");
                    std::process::exit(2);
                });
                k += 2;
            }
            "--jobs" => {
                jobs = need(k).parse().unwrap_or_else(|_| {
                    eprintln!("--jobs expects an integer");
                    std::process::exit(2);
                });
                k += 2;
            }
            "--out" => {
                out = need(k);
                k += 2;
            }
            other => {
                eprintln!("unknown bench-prover option `{other}`");
                std::process::exit(2);
            }
        }
    }
    if jobs > host {
        eprintln!(
            "bench-prover: warning: --jobs {jobs} exceeds host parallelism {host}; \
             expect the pool to run slower than the baseline"
        );
    }
    let r = formad_bench::prover_bench(iters, jobs);
    let json = formad_bench::prover_bench_json(&r);
    fs::write(&out, &json).expect("write bench output");
    print!("{json}");
    eprintln!(
        "bench-prover: {iters}×table1 suite, baseline {:.3}s vs optimized {:.3}s \
         (jobs={jobs}, cache {} hits / {} misses) → speedup {:.2}×; wrote {out}",
        r.baseline_s, r.optimized_s, r.cache_hits, r.cache_misses, r.speedup
    );
    eprintln!(
        "bench-prover: cdcl {} vs legacy {} lia calls per pass ({:.1}× fewer), \
         cores agree: {}",
        r.lia_calls_per_pass,
        r.legacy_lia_calls_per_pass,
        r.legacy_lia_calls_per_pass as f64 / (r.lia_calls_per_pass as f64).max(1.0),
        r.search_cores_agree
    );
    // One traced pass attributes where the time goes per phase; written
    // next to the main record so regressions can be localized.
    let phases_out = match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}_phases.json"),
        None => format!("{out}.phases.json"),
    };
    let p = formad_bench::prover_phases(jobs);
    fs::write(&phases_out, formad_bench::prover_phases_json(&p)).expect("write phase output");
    eprintln!(
        "bench-prover: traced pass {:.3}s, query time {:.3}s over {} queries \
         ({} hits / {} misses); wrote {phases_out}",
        p.wall_s, p.query_s, p.queries, p.query_hits, p.query_misses
    );
}

/// `bench-kernels [--iters K] [--threads LIST] [--smoke] [--out PATH]` —
/// run the four-version protocol natively on both real backends
/// (register bytecode on OS threads, and AOT-compiled native kernels),
/// bitwise-verify every cell against the simulated interpreter, fit the
/// interpreter dispatch-overhead calibration, and record wall-clock per
/// discipline × backend as JSON.
fn bench_kernels(rest: &[String]) {
    let mut iters = 9usize;
    let mut threads: Vec<usize> = formad_bench::EXEC_THREADS.to_vec();
    let mut smoke = false;
    let mut out = "BENCH_kernels.json".to_string();
    let mut k = 0;
    while k < rest.len() {
        let need = |k: usize| {
            rest.get(k + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} expects a value", rest[k]);
                std::process::exit(2);
            })
        };
        match rest[k].as_str() {
            "--iters" => {
                iters = need(k).parse().unwrap_or_else(|_| {
                    eprintln!("--iters expects an integer");
                    std::process::exit(2);
                });
                k += 2;
            }
            "--threads" => {
                threads = need(k)
                    .split(',')
                    .map(|t| {
                        t.trim().parse().unwrap_or_else(|_| {
                            eprintln!("--threads expects a comma-separated integer list");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                k += 2;
            }
            "--smoke" => {
                smoke = true;
                k += 1;
            }
            "--out" => {
                out = need(k);
                k += 2;
            }
            other => {
                eprintln!("unknown bench-kernels option `{other}`");
                std::process::exit(2);
            }
        }
    }
    let r = formad_bench::kernel_bench(iters, &threads, smoke);
    let json = formad_bench::kernel_bench_json(&r);
    fs::write(&out, &json).expect("write bench output");
    print!("{json}");
    for kd in &r.kernels {
        let t = kd.check_threads;
        eprintln!(
            "bench-kernels: {} @T={t} [{}]: FormAD {:.6}s vs atomic {:.6}s vs reduction {:.6}s \
             (FormAD/atomic measured {:.2}×, cost model predicted {:.2}×, agree: {})",
            kd.name,
            kd.headline_backend(),
            kd.best_s("adj-FormAD", t),
            kd.best_s("adj-atomic", t),
            kd.best_s("adj-reduction", t),
            kd.measured_formad_over_atomic,
            kd.predicted_formad_over_atomic,
            kd.ordering_agrees
        );
        if let Some(x) = kd.aot_over_bytecode("adj-FormAD") {
            eprintln!(
                "bench-kernels: {}: aot removed {x:.1}× dispatch overhead on the FormAD \
                 adjoint (bytecode-predicted ratio, calibrated: {:.2}×, bytecode measured: {})",
                kd.name,
                kd.predicted_calibrated,
                kd.formad_over_atomic_on("bytecode")
                    .map(|r| format!("{r:.2}×"))
                    .unwrap_or_else(|| "n/a".into()),
            );
        }
    }
    eprintln!(
        "bench-kernels: calibration over {} bytecode cells: {:.2e} s/cycle, {:.2e} s/instr \
         (dispatch ≈ {:.0} model cycles per op)",
        r.calibration.points,
        r.calibration.seconds_per_cycle,
        r.calibration.seconds_per_instruction,
        r.calibration.dispatch_cycles_per_op
    );
    eprintln!(
        "bench-kernels: all cells bitwise-identical to the simulated interpreter: {}; \
         measured orderings match the cost model: {}; wrote {out}",
        r.all_bitwise, r.orderings_agree
    );
}

fn small_stencil(s: Scale) -> FigureData {
    stencil_figure(1, s.stencil_n, s.stencil_sweeps, &PAPER_THREADS)
}

fn large_stencil(s: Scale) -> FigureData {
    stencil_figure(8, s.stencil_n, s.stencil_sweeps.max(1), &PAPER_THREADS)
}

fn gfmc(s: Scale) -> FigureData {
    gfmc_figure(s.gfmc_ns, s.gfmc_reps, &PAPER_THREADS)
}

fn green_gauss(s: Scale) -> FigureData {
    green_gauss_figure(s.gg_nodes, s.gg_reps, &PAPER_THREADS)
}

enum Kind {
    Absolute,
    Speedup,
}

fn print_fig(f: &FigureData, kind: Kind, title: &str) {
    println!("# {title}");
    println!("# benchmark: {}", f.name);
    println!(
        "# serial baselines (Gcycles): primal {:.4}, adjoint {:.4}",
        f.primal_serial, f.adjoint_serial
    );
    match kind {
        Kind::Absolute => print!("{}", f.absolute_csv()),
        Kind::Speedup => print!("{}", f.speedup_csv()),
    }
}

fn all(scale: Scale, outdir: &Path) {
    fs::create_dir_all(outdir).expect("create output dir");
    let write = |name: &str, content: &str| {
        let path = outdir.join(name);
        fs::write(&path, content).expect("write output");
        println!("wrote {}", path.display());
    };

    println!("== Table 1 ==");
    let t1 = formad_bench::experiments::table1_text(&table1());
    print!("{t1}");
    write("table1.txt", &t1);

    println!("\n== Ablations ==");
    let ab = formad_bench::ablation_text(&formad_bench::ablation_grid());
    print!("{ab}");
    write("ablations.txt", &ab);

    println!("\n== LBM (§7.3) ==");
    let lr = lbm_report();
    print!("{lr}");
    write("lbm_report.txt", &lr);

    for (fig_abs, fig_spd, data, label) in [
        (
            "fig3_abs_small_stencil.csv",
            "fig5_speedup_small_stencil.csv",
            small_stencil(scale),
            "small stencil",
        ),
        (
            "fig4_abs_large_stencil.csv",
            "fig6_speedup_large_stencil.csv",
            large_stencil(scale),
            "large stencil",
        ),
        (
            "fig7_abs_gfmc.csv",
            "fig8_speedup_gfmc.csv",
            gfmc(scale),
            "GFMC",
        ),
        (
            "fig9_abs_greengauss.csv",
            "fig10_speedup_greengauss.csv",
            green_gauss(scale),
            "Green Gauss",
        ),
    ] {
        println!("\n== {label} ({}) ==", data.name);
        println!("absolute Gcycles:");
        print!("{}", data.absolute_csv());
        println!("speedup vs serial:");
        print!("{}", data.speedup_csv());
        write(fig_abs, &data.absolute_csv());
        write(fig_spd, &data.speedup_csv());
    }
}
