//! Ablation study: what each ingredient of the FormAD analysis buys.
//!
//! Three switches (see [`formad::RegionOptions`]):
//!
//! - **contexts** (§5.1): without them every reference pretends to be at
//!   the root context — *unsound* (knowledge from one branch leaks into
//!   incomparable branches), demonstrated by an acceptance flip;
//! - **exact-increment detection** (§5.4): without it increment writes
//!   are treated as overwrites, inflating the query count;
//! - **stride root assertions**: without them stride-`s` iteration
//!   spaces lose their parity/congruence facts and some disjointness
//!   proofs fail.

use formad::{Decision, Formad, FormadAnalysis, FormadOptions};
use formad_ir::Program;
use formad_kernels::{lbm, GfmcCase, GreenGaussCase, StencilCase};

/// One benchmark × one configuration outcome.
#[derive(Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: String,
    /// Configuration label.
    pub config: String,
    /// Arrays proven shared / total decided.
    pub shared: usize,
    /// Total decisions.
    pub total: usize,
    /// Prover queries.
    pub queries: u64,
}

fn run_config(
    name: &str,
    config: &str,
    primal: &Program,
    indep: &[&str],
    dep: &[&str],
    tweak: impl FnOnce(&mut FormadOptions),
) -> AblationRow {
    let mut opts = FormadOptions::new(indep, dep);
    tweak(&mut opts);
    let a = Formad::new(opts).analyze(primal).expect("analysis");
    row(name, config, &a)
}

fn row(name: &str, config: &str, a: &FormadAnalysis) -> AblationRow {
    let mut shared = 0;
    let mut total = 0;
    for r in &a.regions {
        for d in r.decisions.values() {
            total += 1;
            if matches!(d, Decision::Shared) {
                shared += 1;
            }
        }
    }
    AblationRow {
        name: name.to_string(),
        config: config.to_string(),
        shared,
        total,
        queries: a.total_queries(),
    }
}

/// Run the full ablation grid over the six benchmarks.
pub fn ablation_grid() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    let cases: Vec<(&str, Program, Vec<&str>, Vec<&str>)> = vec![
        (
            "stencil 1",
            StencilCase::small(64, 1).ir(),
            StencilCase::independents().to_vec(),
            StencilCase::dependents().to_vec(),
        ),
        (
            "stencil 8",
            StencilCase::large(128, 1).ir(),
            StencilCase::independents().to_vec(),
            StencilCase::dependents().to_vec(),
        ),
        (
            "GFMC",
            GfmcCase::new(16, 1).ir(),
            GfmcCase::independents().to_vec(),
            GfmcCase::dependents().to_vec(),
        ),
        (
            "GFMC*",
            GfmcCase::new(16, 1).ir_star(),
            GfmcCase::independents().to_vec(),
            GfmcCase::dependents().to_vec(),
        ),
        (
            "LBM",
            lbm::lbm_ir(),
            lbm::independents().to_vec(),
            lbm::dependents().to_vec(),
        ),
        (
            "GreenGauss",
            GreenGaussCase::linear(64, 1).ir(),
            GreenGaussCase::independents().to_vec(),
            GreenGaussCase::dependents().to_vec(),
        ),
    ];
    for (name, primal, indep, dep) in &cases {
        rows.push(run_config(name, "full", primal, indep, dep, |_| {}));
        rows.push(run_config(name, "no-increment", primal, indep, dep, |o| {
            o.region.use_increment_detection = false;
        }));
        rows.push(run_config(name, "no-stride", primal, indep, dep, |o| {
            o.region.stride_constraints = false;
        }));
        rows.push(run_config(
            name,
            "no-contexts(U)",
            primal,
            indep,
            dep,
            |o| {
                o.region.use_contexts = false;
            },
        ));
    }
    rows
}

/// Render the grid as a table.
pub fn ablation_text(rows: &[AblationRow]) -> String {
    use std::fmt::Write;
    let mut s = format!(
        "{:<12} {:<16} {:>10} {:>8}\n",
        "problem", "config", "shared", "queries"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<12} {:<16} {:>6}/{:<3} {:>8}",
            r.name, r.config, r.shared, r.total, r.queries
        );
    }
    s.push_str(
        "\nnotes: `no-contexts(U)` is an UNSOUND ablation (branch knowledge \
         leaks across incomparable contexts) shown for comparison only;\n\
         `no-increment` treats exact increments as overwrites (more \
         queries, same decisions on these kernels);\n\
         `no-stride` drops the iteration-space congruence facts.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_ablation_costs_queries() {
        let rows = ablation_grid();
        let get = |name: &str, cfg: &str| -> &AblationRow {
            rows.iter()
                .find(|r| r.name == name && r.config == cfg)
                .unwrap()
        };
        // Increment detection saves queries on the stencils.
        assert!(get("stencil 8", "no-increment").queries > get("stencil 8", "full").queries);
        // Full config proves everything shared on the accepted kernels.
        for name in ["stencil 1", "stencil 8", "GFMC", "GreenGauss"] {
            let f = get(name, "full");
            assert_eq!(f.shared, f.total, "{name}");
        }
        // The rejected kernels stay rejected in every sound config.
        for cfg in ["full", "no-increment", "no-stride"] {
            assert!(get("GFMC*", cfg).shared < get("GFMC*", cfg).total, "{cfg}");
            assert!(get("LBM", cfg).shared < get("LBM", cfg).total, "{cfg}");
        }
    }
}
