//! Experiment drivers for every table and figure of the paper.
//!
//! All runtimes are *simulated wall cycles* of the `formad-machine`
//! multiprocessor (the host has one core; see DESIGN.md). Absolute values
//! are reported in giga-cycles; parallel speedups are dimensionless and
//! directly comparable to the paper's Figures 5, 6, 8, 10.

use std::fmt::Write as _;

use formad::{table1_header, table1_row, Formad, FormadOptions};
use formad_ir::Program;
use formad_kernels::{lbm, GfmcCase, GreenGaussCase, StencilCase};
use formad_machine::{run, Bindings, Machine};

use crate::versions::{adjoint_bindings, ProgramVersions};

/// Thread counts of the paper's plots.
pub const PAPER_THREADS: [usize; 5] = [1, 2, 4, 8, 18];

/// One figure's data: per-version absolute simulated times and the serial
/// baselines used for speedups.
#[derive(Debug)]
pub struct FigureData {
    /// Benchmark label.
    pub name: String,
    /// Thread counts measured.
    pub threads: Vec<usize>,
    /// `(version label, giga-cycles per thread count)`.
    pub series: Vec<(String, Vec<f64>)>,
    /// Serial primal baseline (giga-cycles).
    pub primal_serial: f64,
    /// Serial adjoint baseline (giga-cycles).
    pub adjoint_serial: f64,
}

impl FigureData {
    /// Absolute-time CSV (Figures 3, 4, 7, 9).
    pub fn absolute_csv(&self) -> String {
        let mut s = String::from("threads");
        for (label, _) in &self.series {
            let _ = write!(s, ",{label}");
        }
        s.push('\n');
        for (k, t) in self.threads.iter().enumerate() {
            let _ = write!(s, "{t}");
            for (_, vals) in &self.series {
                let _ = write!(s, ",{:.6}", vals[k]);
            }
            s.push('\n');
        }
        s
    }

    /// Speedup CSV (Figures 5, 6, 8, 10): primal versions against the
    /// serial primal, adjoint versions against the serial adjoint.
    pub fn speedup_csv(&self) -> String {
        let mut s = String::from("threads");
        for (label, _) in &self.series {
            let _ = write!(s, ",{label}");
        }
        s.push('\n');
        for (k, t) in self.threads.iter().enumerate() {
            let _ = write!(s, "{t}");
            for (label, vals) in &self.series {
                let base = if label.starts_with("primal") {
                    self.primal_serial
                } else {
                    self.adjoint_serial
                };
                let _ = write!(s, ",{:.4}", base / vals[k]);
            }
            s.push('\n');
        }
        s
    }

    /// Speedup of a version at a thread count (for tests/reports).
    pub fn speedup(&self, label: &str, threads: usize) -> f64 {
        let k = self
            .threads
            .iter()
            .position(|t| *t == threads)
            .unwrap_or_else(|| panic!("thread count {threads} not measured"));
        let (_, vals) = self
            .series
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("no series {label}"));
        let base = if label.starts_with("primal") {
            self.primal_serial
        } else {
            self.adjoint_serial
        };
        base / vals[k]
    }

    /// Absolute simulated time of a version at a thread count.
    pub fn time(&self, label: &str, threads: usize) -> f64 {
        let k = self.threads.iter().position(|t| *t == threads).unwrap();
        let (_, vals) = self.series.iter().find(|(l, _)| l == label).unwrap();
        vals[k]
    }
}

fn gcycles(prog: &Program, bind: &Bindings, threads: usize) -> f64 {
    let mut b = bind.clone();
    let r = run(prog, &mut b, &Machine::with_threads(threads))
        .unwrap_or_else(|e| panic!("simulated run of `{}` failed: {e}", prog.name));
    r.wall_cycles as f64 / 1e9
}

/// Run the five-version protocol over the paper's thread counts.
fn run_protocol(
    name: &str,
    versions: &ProgramVersions,
    base: &Bindings,
    indep: &[&str],
    dep: &[&str],
    threads: &[usize],
) -> FigureData {
    let adj_base = adjoint_bindings(&versions.primal, base, indep, dep);
    let primal_serial = gcycles(&versions.primal_serial, base, 1);
    let adjoint_serial = gcycles(&versions.adj_serial, &adj_base, 1);
    let mut series: Vec<(String, Vec<f64>)> = vec![
        ("primal".into(), Vec::new()),
        ("adj-FormAD".into(), Vec::new()),
        ("adj-atomic".into(), Vec::new()),
        ("adj-reduction".into(), Vec::new()),
    ];
    for &t in threads {
        series[0].1.push(gcycles(&versions.primal, base, t));
        series[1]
            .1
            .push(gcycles(&versions.adj_formad, &adj_base, t));
        series[2]
            .1
            .push(gcycles(&versions.adj_atomic, &adj_base, t));
        series[3]
            .1
            .push(gcycles(&versions.adj_reduction, &adj_base, t));
    }
    FigureData {
        name: name.to_string(),
        threads: threads.to_vec(),
        series,
        primal_serial,
        adjoint_serial,
    }
}

/// Figures 3/5 (radius 1) and 4/6 (radius 8): stencil absolute time and
/// speedup.
pub fn stencil_figure(radius: usize, n: usize, sweeps: usize, threads: &[usize]) -> FigureData {
    let case = StencilCase { n, sweeps, radius };
    let versions = ProgramVersions::generate(
        &case.ir(),
        StencilCase::independents(),
        StencilCase::dependents(),
    );
    let base = case.bindings(0xBEEF);
    run_protocol(
        &format!("stencil r={radius} n={n} sweeps={sweeps}"),
        &versions,
        &base,
        StencilCase::independents(),
        StencilCase::dependents(),
        threads,
    )
}

/// Figures 7/8: GFMC (split version) absolute time and speedup.
pub fn gfmc_figure(ns: usize, repeats: usize, threads: &[usize]) -> FigureData {
    let case = GfmcCase::new(ns, repeats);
    let versions =
        ProgramVersions::generate(&case.ir(), GfmcCase::independents(), GfmcCase::dependents());
    let base = case.bindings_split(0xBEEF);
    run_protocol(
        &format!("gfmc ns={ns} reps={repeats}"),
        &versions,
        &base,
        GfmcCase::independents(),
        GfmcCase::dependents(),
        threads,
    )
}

/// Figures 9/10: Green-Gauss gradients absolute time and speedup.
pub fn green_gauss_figure(nodes: usize, repeats: usize, threads: &[usize]) -> FigureData {
    let case = GreenGaussCase::linear(nodes, repeats);
    let versions = ProgramVersions::generate(
        &case.ir(),
        GreenGaussCase::independents(),
        GreenGaussCase::dependents(),
    );
    let base = case.bindings(0xBEEF);
    run_protocol(
        &format!("green-gauss nodes={nodes} reps={repeats}"),
        &versions,
        &base,
        GreenGaussCase::independents(),
        GreenGaussCase::dependents(),
        threads,
    )
}

/// One row of Table 1.
#[derive(Debug)]
pub struct Table1Row {
    /// Problem name.
    pub name: String,
    /// Pretty row (matches [`formad::table1_header`]).
    pub rendered: String,
    /// Raw stats.
    pub analysis: formad::FormadAnalysis,
}

/// Table 1: FormAD analysis statistics for all six problems.
pub fn table1() -> Vec<Table1Row> {
    let mut rows = Vec::new();
    let mut push = |name: &str, primal: &Program, indep: &[&str], dep: &[&str]| {
        let a = Formad::new(FormadOptions::new(indep, dep))
            .analyze(primal)
            .expect("analysis");
        rows.push(Table1Row {
            name: name.to_string(),
            rendered: table1_row(name, &a),
            analysis: a,
        });
    };
    let st1 = StencilCase::small(64, 1);
    push(
        "stencil 1",
        &st1.ir(),
        StencilCase::independents(),
        StencilCase::dependents(),
    );
    let st8 = StencilCase::large(128, 1);
    push(
        "stencil 8",
        &st8.ir(),
        StencilCase::independents(),
        StencilCase::dependents(),
    );
    let gf = GfmcCase::new(16, 1);
    push(
        "GFMC",
        &gf.ir(),
        GfmcCase::independents(),
        GfmcCase::dependents(),
    );
    push(
        "GFMC*",
        &gf.ir_star(),
        GfmcCase::independents(),
        GfmcCase::dependents(),
    );
    push(
        "LBM",
        &lbm::lbm_ir(),
        lbm::independents(),
        lbm::dependents(),
    );
    let gg = GreenGaussCase::linear(64, 1);
    push(
        "GreenGauss",
        &gg.ir(),
        GreenGaussCase::independents(),
        GreenGaussCase::dependents(),
    );
    rows
}

/// Render Table 1 with its header.
pub fn table1_text(rows: &[Table1Row]) -> String {
    let mut s = table1_header();
    s.push('\n');
    for r in rows {
        s.push_str(&r.rendered);
        s.push('\n');
    }
    s
}

/// §7.3-style LBM report: the known-safe write set and the rejected
/// adjoint expression.
pub fn lbm_report() -> String {
    let a = Formad::new(FormadOptions::new(lbm::independents(), lbm::dependents()))
        .analyze(&lbm::lbm_ir())
        .expect("lbm analysis");
    let r = &a.regions[0];
    let mut s = String::from("FormAD builds the set of known safe write expressions:\n");
    for e in &r.safe_write_exprs {
        let _ = writeln!(s, "  ({e})");
    }
    s.push_str(
        "At least one index expression used to increment an adjoint variable \
         is not contained in this set:\n",
    );
    for e in &r.rejected_exprs {
        let _ = writeln!(s, "  ({e})");
    }
    s.push_str(
        "FormAD thus considers the access to srcgrid as unsafe and does not \
         remove any safeguards from the generated code.\n",
    );
    s
}
