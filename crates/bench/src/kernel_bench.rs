//! Real-hardware kernel benchmark: the paper's Table-2 protocol executed
//! on the native backends — flat bytecode on OS threads, and the AOT
//! backend (parallel regions compiled to a native cdylib via `rustc`).
//!
//! For each executable kernel (both stencils, split GFMC, Green-Gauss)
//! the four-version protocol — *Primal*, *Adjoint FormAD*, *Adjoint
//! Atomic*, *Adjoint Reduction* — is compiled once and run on real OS
//! threads via [`formad_machine::NativeEngine`], measuring wall-clock
//! per iteration with the engine, compiled bytecode, and AOT kernel all
//! reused across iterations (the paper's steady-state regime).
//!
//! Cross-checks guarding the numbers:
//!
//! * **bitwise** — every (kernel, version, backend, thread-count) cell
//!   is run once under the simulated interpreter and both native
//!   backends must be bitwise identical to it; a divergent backend would
//!   invalidate every measurement, so the harness panics instead of
//!   reporting.
//! * **ordering** — the simulated cost model predicts which of
//!   FormAD/atomic is faster at the check thread count; the measured
//!   wall-clock ordering must be available for comparison (recorded,
//!   and summarized in `orderings_agree`).
//! * **discipline** — the per-array increment modes the FormAD version
//!   actually ran under come straight from the analysis report
//!   ([`formad::FormadAnalysis::discipline_map`]), not from re-deriving
//!   anything here.
//!
//! The cost model is additionally *calibrated* against the measured
//! data: the simulator charges cycles per abstract memory/ALU event,
//! but an interpreted backend pays a per-instruction dispatch overhead
//! the model does not see — which is exactly why a predicted 155×
//! FormAD-over-atomic can measure as 1.0× under the bytecode backend.
//! Fitting `wall_s ≈ p·model_cycles + q·instructions` over every
//! measured bytecode cell recovers that overhead (`q/p` = model cycles
//! one dispatched instruction costs) and yields `predicted_calibrated`,
//! the ratio the *bytecode* backend should measure; the raw model ratio
//! remains the prediction for the AOT backend, which compiles the
//! dispatch away.
//!
//! Results serialize to JSON by hand (`BENCH_kernels.json` at the repo
//! root) — same no-serde policy as `BENCH_prover.json`.

use std::fmt::Write as _;
use std::time::Instant;

use formad_ir::Program;
use formad_kernels::{GfmcCase, GreenGaussCase, StencilCase};
use formad_machine::{compile, load_or_compile, lower, run, Bindings, Machine, NativeEngine};

use crate::versions::{adjoint_bindings, ProgramVersions};

/// Default thread counts measured (the host rarely has 18 real cores;
/// oversubscription beyond 4 adds noise without information).
pub const EXEC_THREADS: [usize; 3] = [1, 2, 4];

/// The two real-hardware backends, in series order.
pub const BACKENDS: [&str; 2] = ["bytecode", "aot"];

/// One kernel of the executable suite: primal, bindings, AD in/outputs.
struct KernelCase {
    name: String,
    program: Program,
    base: Bindings,
    indep: &'static [&'static str],
    dep: &'static [&'static str],
}

/// The four executable Table-2 kernels (LBM is analysis-only: FormAD
/// keeps its safeguards, so there is no plain-shared version to race).
/// `smoke` shrinks the sizes to CI scale — ordering and bitwise checks
/// still run, wall-clock numbers are too small to mean anything.
fn cases(smoke: bool) -> Vec<KernelCase> {
    let (st_n, st_sweeps, gf_ns, gf_reps, gg_nodes, gg_reps) = if smoke {
        (512, 1, 16, 1, 512, 1)
    } else {
        (100_000, 2, 96, 2, 50_000, 2)
    };
    let st1 = StencilCase::small(st_n, st_sweeps);
    let st8 = StencilCase::large(st_n, st_sweeps);
    let gf = GfmcCase::new(gf_ns, gf_reps);
    let gg = GreenGaussCase::linear(gg_nodes, gg_reps);
    vec![
        KernelCase {
            name: format!("stencil r=1 n={st_n} sweeps={st_sweeps}"),
            program: st1.ir(),
            base: st1.bindings(0xBEEF),
            indep: StencilCase::independents(),
            dep: StencilCase::dependents(),
        },
        KernelCase {
            name: format!("stencil r=8 n={st_n} sweeps={st_sweeps}"),
            program: st8.ir(),
            base: st8.bindings(0xBEEF),
            indep: StencilCase::independents(),
            dep: StencilCase::dependents(),
        },
        KernelCase {
            name: format!("gfmc ns={gf_ns} reps={gf_reps}"),
            program: gf.ir(),
            base: gf.bindings_split(0xBEEF),
            indep: GfmcCase::independents(),
            dep: GfmcCase::dependents(),
        },
        KernelCase {
            name: format!("green-gauss nodes={gg_nodes} reps={gg_reps}"),
            program: gg.ir(),
            base: gg.bindings(0xBEEF),
            indep: GreenGaussCase::independents(),
            dep: GreenGaussCase::dependents(),
        },
    ]
}

/// Wall-clock samples of one program version on one backend at one
/// thread count.
#[derive(Debug)]
pub struct VersionTiming {
    /// Version label (`primal`, `adj-FormAD`, `adj-atomic`,
    /// `adj-reduction`).
    pub version: String,
    /// Execution backend (`bytecode` or `aot`).
    pub backend: String,
    /// OS threads used.
    pub threads: usize,
    /// Per-iteration wall-clock (seconds), in measurement order.
    pub iter_s: Vec<f64>,
}

impl VersionTiming {
    /// Fastest iteration — the steady-state estimate benchmarks compare.
    pub fn best_s(&self) -> f64 {
        self.iter_s.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean iteration time.
    pub fn mean_s(&self) -> f64 {
        self.iter_s.iter().sum::<f64>() / self.iter_s.len().max(1) as f64
    }
}

/// One cell of the calibration data: what the cost model charged vs
/// what the bytecode backend measured.
#[derive(Debug, Clone, Copy)]
struct CalPoint {
    /// Simulated wall cycles of the cell (the model's cost).
    cycles: f64,
    /// Instructions the cell retires — the dispatch-bearing event count
    /// (flops + memory + atomics + tape traffic + indirections).
    instructions: f64,
    /// Measured bytecode best wall-clock, seconds.
    wall_s: f64,
}

/// The dispatch-overhead calibration fitted over every measured
/// bytecode cell: `wall_s ≈ p·model_cycles + q·instructions`.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Cells fitted.
    pub points: usize,
    /// Seconds one simulated cycle costs on this host (`p`).
    pub seconds_per_cycle: f64,
    /// Seconds one dispatched instruction costs beyond its modeled
    /// cycles (`q`).
    pub seconds_per_instruction: f64,
    /// `q/p`: how many model cycles of overhead the interpreter's
    /// dispatch adds per instruction. Large values explain why modeled
    /// discipline gaps vanish under interpretation.
    pub dispatch_cycles_per_op: f64,
}

impl Calibration {
    /// Least-squares fit through the origin on two regressors (2×2
    /// normal equations). Degenerate systems fall back to the
    /// instructions-only model — on an interpreter the dispatch term
    /// dominates, so that is the safe direction to collapse.
    fn fit(points: &[CalPoint]) -> Calibration {
        let (mut scc, mut sci, mut sii, mut scy, mut siy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for pt in points {
            scc += pt.cycles * pt.cycles;
            sci += pt.cycles * pt.instructions;
            sii += pt.instructions * pt.instructions;
            scy += pt.cycles * pt.wall_s;
            siy += pt.instructions * pt.wall_s;
        }
        let det = scc * sii - sci * sci;
        let (mut p, mut q) = if det.abs() > f64::EPSILON * scc * sii {
            ((scy * sii - siy * sci) / det, (siy * scc - scy * sci) / det)
        } else {
            (0.0, 0.0)
        };
        if p <= 0.0 || q <= 0.0 {
            // Negative coefficients mean the regressors are nearly
            // collinear on this data; keep the physical model.
            p = 0.0;
            q = if sii > 0.0 { siy / sii } else { 0.0 };
        }
        Calibration {
            points: points.len(),
            seconds_per_cycle: p,
            seconds_per_instruction: q,
            dispatch_cycles_per_op: if p > 0.0 { q / p } else { f64::INFINITY },
        }
    }

    /// Predicted wall-clock of a cell under the fitted model.
    fn predict(&self, cycles: f64, instructions: f64) -> f64 {
        self.seconds_per_cycle * cycles + self.seconds_per_instruction * instructions
    }
}

/// Everything measured for one kernel.
#[derive(Debug)]
pub struct KernelExecData {
    /// Kernel label with problem size.
    pub name: String,
    /// True when FormAD proved every adjoint array safe.
    pub all_safe: bool,
    /// `(region, array, mode)` — the increment discipline each adjoint
    /// array ran under in the FormAD version, from the analysis report.
    pub disciplines: Vec<(usize, String, String)>,
    /// True: every cell was cross-run under the simulated interpreter and
    /// found bitwise identical (the harness panics otherwise).
    pub native_matches_sim: bool,
    /// True when the AOT kernels built and were measured; false means
    /// the build degraded and only bytecode numbers exist.
    pub aot_available: bool,
    /// Thread count of the ordering cross-check.
    pub check_threads: usize,
    /// Simulated cost-model prediction: atomic Gcycles / FormAD Gcycles
    /// at `check_threads` (> 1 means FormAD predicted faster). This is
    /// the prediction for a backend with no dispatch overhead — i.e.
    /// the AOT backend.
    pub predicted_formad_over_atomic: f64,
    /// The same ratio predicted by the *calibrated* model (dispatch
    /// overhead included) — what the bytecode backend should measure.
    pub predicted_calibrated: f64,
    /// Measured: best atomic wall-clock / best FormAD wall-clock at
    /// `check_threads`, on the AOT backend when available (the backend
    /// the raw model predicts), else bytecode.
    pub measured_formad_over_atomic: f64,
    /// Did the measured ordering match the cost model's prediction?
    pub ordering_agrees: bool,
    /// All timings: versions × backends × thread counts.
    pub series: Vec<VersionTiming>,
    /// Calibration inputs per (version, threads) cell, bytecode backend.
    cal_cells: Vec<(String, usize, CalPoint)>,
}

impl KernelExecData {
    /// Did the FormAD adjoint beat the atomic adjoint on real hardware?
    pub fn formad_beats_atomic(&self) -> bool {
        self.measured_formad_over_atomic > 1.0
    }

    /// Best wall-clock of a version on a backend at a thread count.
    pub fn best_s_on(&self, version: &str, backend: &str, threads: usize) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.version == version && s.backend == backend && s.threads == threads)
            .map(VersionTiming::best_s)
    }

    /// Best wall-clock of a version at a thread count on the headline
    /// backend (AOT when available).
    pub fn best_s(&self, version: &str, threads: usize) -> f64 {
        self.best_s_on(version, self.headline_backend(), threads)
            .unwrap_or_else(|| panic!("no series {version} at T={threads}"))
    }

    /// The backend the headline ratios are measured on.
    pub fn headline_backend(&self) -> &'static str {
        if self.aot_available {
            "aot"
        } else {
            "bytecode"
        }
    }

    /// The overall fastest cell of this kernel.
    pub fn fastest(&self) -> &VersionTiming {
        self.fastest_of(|_| true).expect("kernel has timings")
    }

    /// The fastest cell among a filtered set of series.
    pub fn fastest_of(&self, keep: impl Fn(&VersionTiming) -> bool) -> Option<&VersionTiming> {
        self.series
            .iter()
            .filter(|s| keep(s))
            .min_by(|a, b| a.best_s().total_cmp(&b.best_s()))
    }

    /// Best-over-threads bytecode time / best-over-threads AOT time for
    /// one version — the dispatch overhead the AOT backend removed.
    pub fn aot_over_bytecode(&self, version: &str) -> Option<f64> {
        let best = |backend: &str| {
            self.series
                .iter()
                .filter(|s| s.version == version && s.backend == backend)
                .map(VersionTiming::best_s)
                .fold(f64::INFINITY, f64::min)
        };
        let (b, a) = (best("bytecode"), best("aot"));
        (a.is_finite() && b.is_finite()).then_some(b / a)
    }

    /// Measured FormAD-over-atomic on one backend at `check_threads`.
    pub fn formad_over_atomic_on(&self, backend: &str) -> Option<f64> {
        let a = self.best_s_on("adj-atomic", backend, self.check_threads)?;
        let f = self.best_s_on("adj-FormAD", backend, self.check_threads)?;
        Some(a / f)
    }
}

/// Everything `BENCH_kernels.json` records.
#[derive(Debug)]
pub struct KernelBenchResult {
    /// Timed iterations per cell.
    pub iters: usize,
    /// Thread counts measured.
    pub threads: Vec<usize>,
    /// Smoke sizes?
    pub smoke: bool,
    /// Per-kernel data.
    pub kernels: Vec<KernelExecData>,
    /// All cells (both backends) bitwise-verified against the simulated
    /// interpreter.
    pub all_bitwise: bool,
    /// Every kernel's measured FormAD/atomic ordering matched the cost
    /// model's prediction.
    pub orderings_agree: bool,
    /// The fitted dispatch-overhead calibration.
    pub calibration: Calibration,
}

/// Panic unless two executions are bitwise identical.
fn assert_bitwise(
    kernel: &str,
    version: &str,
    backend: &str,
    threads: usize,
    sim: &Bindings,
    nat: &Bindings,
) {
    let ctx = |what: &str| format!("{kernel} / {version} [{backend}] at T={threads}: {what}");
    for (name, v) in &sim.real_scalars {
        let n = nat.real_scalars.get(name).unwrap_or_else(|| {
            panic!("{}", ctx(&format!("native lost scalar `{name}`")));
        });
        assert_eq!(
            v.to_bits(),
            n.to_bits(),
            "{}",
            ctx(&format!("scalar `{name}`: sim {v} vs native {n}"))
        );
    }
    for (name, v) in &sim.int_scalars {
        assert_eq!(
            nat.int_scalars.get(name),
            Some(v),
            "{}",
            ctx(&format!("int scalar `{name}`"))
        );
    }
    for (name, v) in &sim.real_arrays {
        let n = nat.real_arrays.get(name).unwrap_or_else(|| {
            panic!("{}", ctx(&format!("native lost array `{name}`")));
        });
        assert_eq!(
            v.len(),
            n.len(),
            "{}",
            ctx(&format!("array `{name}` length"))
        );
        for (k, (a, b)) in v.iter().zip(n).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}",
                ctx(&format!("array `{name}`[{k}]: sim {a} vs native {b}"))
            );
        }
    }
    for (name, v) in &sim.int_arrays {
        assert_eq!(
            nat.int_arrays.get(name),
            Some(v),
            "{}",
            ctx(&format!("int array `{name}`"))
        );
    }
}

/// The dispatch-bearing event count of one simulated run.
fn instruction_count(stats: &formad_machine::ExecStats) -> f64 {
    (stats.flops
        + stats.reads
        + stats.writes
        + stats.atomic_ops
        + stats.tape_pushes
        + stats.tape_pops
        + stats.indirect_ops) as f64
}

/// Run the benchmark: the four-version protocol over `threads` and both
/// backends, `iters` timed iterations per cell, every cell
/// bitwise-verified against the simulated interpreter.
pub fn kernel_bench(iters: usize, threads: &[usize], smoke: bool) -> KernelBenchResult {
    assert!(iters > 0, "need at least one iteration");
    assert!(!threads.is_empty(), "need at least one thread count");
    let check_threads = *threads.iter().max().unwrap();
    let mut kernels = Vec::new();
    for case in cases(smoke) {
        let versions = ProgramVersions::generate(&case.program, case.indep, case.dep);
        let adj_base = adjoint_bindings(&versions.primal, &case.base, case.indep, case.dep);
        let disciplines: Vec<(usize, String, String)> = versions
            .analysis
            .discipline_map()
            .into_iter()
            .map(|(r, a, m)| (r, a, m.to_string()))
            .collect();
        let progs: [(&str, &Program, &Bindings); 4] = [
            ("primal", &versions.primal, &case.base),
            ("adj-FormAD", &versions.adj_formad, &adj_base),
            ("adj-atomic", &versions.adj_atomic, &adj_base),
            ("adj-reduction", &versions.adj_reduction, &adj_base),
        ];
        // Compile each version once — bytecode always, the AOT kernel
        // when the toolchain cooperates (extents are baked into the
        // generated source, so one kernel serves every thread count).
        // A failed build degrades that version to bytecode-only, it
        // does not abort the benchmark.
        let mut compiled = Vec::with_capacity(progs.len());
        let mut aot_available = true;
        for (label, prog, bind) in &progs {
            let lp = lower(prog, bind)
                .unwrap_or_else(|e| panic!("lowering `{}` failed: {e}", prog.name));
            let bc = compile(&lp, prog)
                .unwrap_or_else(|e| panic!("compiling `{}` failed: {e}", prog.name));
            let kernel = match load_or_compile(&lp, &bc) {
                Ok(k) => Some(k),
                Err(e) => {
                    eprintln!(
                        "bench: {}/{label}: aot degraded to bytecode: {e}",
                        case.name
                    );
                    aot_available = false;
                    None
                }
            };
            compiled.push((*label, bc, kernel, *bind));
        }
        let mut series = Vec::new();
        let mut cal_cells = Vec::new();
        let mut gcycles_formad = f64::NAN;
        let mut gcycles_atomic = f64::NAN;
        for &t in threads {
            let mut engine = NativeEngine::new(t);
            // Verification pass (doubles as warm-up): simulated vs both
            // native backends, bitwise; the sim run also yields the cost
            // model's cycles and event counts for the ordering check and
            // the dispatch calibration.
            for (label, bc, kernel, bind) in &compiled {
                let mut sim = (*bind).clone();
                let res = run(
                    compiled_program(&progs, label),
                    &mut sim,
                    &Machine::with_threads(t),
                )
                .unwrap_or_else(|e| panic!("simulated run of `{label}` failed: {e}"));
                let mut byt = (*bind).clone();
                engine
                    .run(bc, &mut byt)
                    .unwrap_or_else(|e| panic!("bytecode run of `{label}` failed: {e}"));
                assert_bitwise(&case.name, label, "bytecode", t, &sim, &byt);
                if let Some(k) = kernel {
                    let mut aot = (*bind).clone();
                    engine
                        .run_with(bc, Some(k), &mut aot)
                        .unwrap_or_else(|e| panic!("aot run of `{label}` failed: {e}"));
                    assert_bitwise(&case.name, label, "aot", t, &sim, &aot);
                }
                cal_cells.push((
                    label.to_string(),
                    t,
                    CalPoint {
                        cycles: res.wall_cycles as f64,
                        instructions: instruction_count(&res.stats),
                        wall_s: f64::NAN, // attached after timing
                    },
                ));
                if t == check_threads {
                    let g = res.wall_cycles as f64 / 1e9;
                    match *label {
                        "adj-FormAD" => gcycles_formad = g,
                        "adj-atomic" => gcycles_atomic = g,
                        _ => {}
                    }
                }
            }
            // Timed iterations, interleaved round-robin across versions
            // AND backends: running any cell's iterations back-to-back
            // lets slow drift (frequency scaling, background load) bias
            // whichever cell happens to run in the quieter window;
            // interleaving spreads time-correlated noise over all cells.
            let mut timings: Vec<(usize, &str, Vec<f64>)> = Vec::new();
            for (i, (_, _, kernel, _)) in compiled.iter().enumerate() {
                timings.push((i, "bytecode", Vec::with_capacity(iters)));
                if kernel.is_some() {
                    timings.push((i, "aot", Vec::with_capacity(iters)));
                }
            }
            for _ in 0..iters {
                for (i, backend, iter_s) in &mut timings {
                    let (label, bc, kernel, bind) = &compiled[*i];
                    let mut b = Bindings::clone(bind);
                    let t0 = Instant::now();
                    let res = match *backend {
                        "aot" => engine.run_with(bc, kernel.as_deref(), &mut b),
                        _ => engine.run(bc, &mut b),
                    };
                    res.unwrap_or_else(|e| panic!("{backend} run of `{label}` failed: {e}"));
                    iter_s.push(t0.elapsed().as_secs_f64());
                }
            }
            for (i, backend, iter_s) in timings {
                series.push(VersionTiming {
                    version: compiled[i].0.to_string(),
                    backend: backend.to_string(),
                    threads: t,
                    iter_s,
                });
            }
        }
        // Attach the measured bytecode time to each calibration cell.
        for (version, t, pt) in &mut cal_cells {
            pt.wall_s = series
                .iter()
                .find(|s| s.version == *version && s.backend == "bytecode" && s.threads == *t)
                .expect("bytecode series exists for every cell")
                .best_s();
        }
        let mut data = KernelExecData {
            name: case.name,
            all_safe: versions.analysis.all_safe(),
            disciplines,
            native_matches_sim: true,
            aot_available,
            check_threads,
            predicted_formad_over_atomic: gcycles_atomic / gcycles_formad,
            predicted_calibrated: f64::NAN, // filled after the global fit
            measured_formad_over_atomic: 0.0,
            ordering_agrees: false,
            series,
            cal_cells,
        };
        data.measured_formad_over_atomic =
            data.best_s("adj-atomic", check_threads) / data.best_s("adj-FormAD", check_threads);
        data.ordering_agrees =
            (data.predicted_formad_over_atomic >= 1.0) == (data.measured_formad_over_atomic >= 1.0);
        kernels.push(data);
    }
    // Fit the dispatch calibration over every bytecode cell of every
    // kernel, then ask the calibrated model for each kernel's
    // FormAD-over-atomic at the check thread count.
    let points: Vec<CalPoint> = kernels
        .iter()
        .flat_map(|k| k.cal_cells.iter().map(|(_, _, pt)| *pt))
        .collect();
    let calibration = Calibration::fit(&points);
    for k in &mut kernels {
        let cell = |version: &str| {
            k.cal_cells
                .iter()
                .find(|(v, t, _)| v == version && *t == k.check_threads)
                .map(|(_, _, pt)| *pt)
        };
        if let (Some(a), Some(f)) = (cell("adj-atomic"), cell("adj-FormAD")) {
            k.predicted_calibrated = calibration.predict(a.cycles, a.instructions)
                / calibration.predict(f.cycles, f.instructions);
        }
    }
    KernelBenchResult {
        iters,
        threads: threads.to_vec(),
        smoke,
        all_bitwise: true,
        orderings_agree: kernels.iter().all(|k| k.ordering_agrees),
        calibration,
        kernels,
    }
}

/// Find a version's program by label (the compiled tuple holds bytecode,
/// not the IR the simulator needs).
fn compiled_program<'a>(
    progs: &'a [(&'static str, &'a Program, &'a Bindings); 4],
    label: &str,
) -> &'a Program {
    progs
        .iter()
        .find(|(l, _, _)| *l == label)
        .map(|(_, p, _)| *p)
        .expect("label from the same table")
}

fn json_usize_list(xs: &[usize]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn json_f64_list(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x:.9}")).collect();
    format!("[{}]", items.join(", "))
}

/// `f64` that may be non-finite → JSON-safe token.
fn json_ratio(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

/// The top-level `summary` block: per kernel, the fastest cell overall
/// and among adjoints, the per-version dispatch-removal factor
/// (`aot_over_bytecode`), and the FormAD-over-atomic ratio per backend.
fn summary_json(r: &KernelBenchResult) -> String {
    let mut entries = Vec::new();
    for k in &r.kernels {
        let cell = |s: &VersionTiming| {
            format!(
                "{{\"version\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \
                 \"best_s\": {:.9}}}",
                s.version,
                s.backend,
                s.threads,
                s.best_s()
            )
        };
        let fastest = cell(k.fastest());
        let fastest_adj = k
            .fastest_of(|s| s.version.starts_with("adj-"))
            .map(&cell)
            .unwrap_or_else(|| "null".to_string());
        let speedups: Vec<String> = ["primal", "adj-FormAD", "adj-atomic", "adj-reduction"]
            .iter()
            .map(|v| {
                format!(
                    "\"{v}\": {}",
                    json_ratio(k.aot_over_bytecode(v).unwrap_or(f64::NAN))
                )
            })
            .collect();
        let foa: Vec<String> = BACKENDS
            .iter()
            .map(|b| {
                format!(
                    "\"{b}\": {}",
                    json_ratio(k.formad_over_atomic_on(b).unwrap_or(f64::NAN))
                )
            })
            .collect();
        let mut o = String::from("      {\n");
        let _ = writeln!(o, "        \"name\": \"{}\",", k.name);
        let _ = writeln!(o, "        \"fastest\": {fastest},");
        let _ = writeln!(o, "        \"fastest_adjoint\": {fastest_adj},");
        let _ = writeln!(
            o,
            "        \"aot_over_bytecode\": {{{}}},",
            speedups.join(", ")
        );
        let _ = writeln!(o, "        \"formad_over_atomic\": {{{}}}", foa.join(", "));
        o.push_str("      }");
        entries.push(o);
    }
    format!(
        "{{\n    \"check_threads\": {},\n    \"kernels\": [\n{}\n    ]\n  }}",
        r.kernels
            .first()
            .map(|k| k.check_threads)
            .unwrap_or_default(),
        entries.join(",\n")
    )
}

/// Hand-rolled JSON for [`KernelBenchResult`] — stable key order,
/// newline-terminated (`BENCH_kernels.json`).
pub fn kernel_bench_json(r: &KernelBenchResult) -> String {
    let mut kernels = Vec::new();
    for k in &r.kernels {
        let disciplines: Vec<String> = k
            .disciplines
            .iter()
            .map(|(region, array, mode)| {
                format!(
                    "        {{\"region\": {region}, \"array\": \"{array}\", \
                     \"mode\": \"{mode}\"}}"
                )
            })
            .collect();
        let series: Vec<String> = k
            .series
            .iter()
            .map(|s| {
                format!(
                    "        {{\"version\": \"{}\", \"backend\": \"{}\", \
                     \"threads\": {}, \"best_s\": {:.9}, \"mean_s\": {:.9}, \
                     \"iter_s\": {}}}",
                    s.version,
                    s.backend,
                    s.threads,
                    s.best_s(),
                    s.mean_s(),
                    json_f64_list(&s.iter_s)
                )
            })
            .collect();
        let mut o = String::from("    {\n");
        let _ = writeln!(o, "      \"name\": \"{}\",", k.name);
        let _ = writeln!(o, "      \"all_safe\": {},", k.all_safe);
        let _ = writeln!(
            o,
            "      \"disciplines\": [\n{}\n      ],",
            disciplines.join(",\n")
        );
        let _ = writeln!(o, "      \"native_matches_sim\": {},", k.native_matches_sim);
        let _ = writeln!(o, "      \"aot_available\": {},", k.aot_available);
        let _ = writeln!(o, "      \"check_threads\": {},", k.check_threads);
        let _ = writeln!(
            o,
            "      \"predicted_formad_over_atomic\": {:.4},",
            k.predicted_formad_over_atomic
        );
        let _ = writeln!(
            o,
            "      \"predicted_calibrated\": {},",
            json_ratio(k.predicted_calibrated)
        );
        let _ = writeln!(
            o,
            "      \"measured_formad_over_atomic\": {:.4},",
            k.measured_formad_over_atomic
        );
        let _ = writeln!(
            o,
            "      \"measured_backend\": \"{}\",",
            k.headline_backend()
        );
        let _ = writeln!(o, "      \"ordering_agrees\": {},", k.ordering_agrees);
        let _ = writeln!(
            o,
            "      \"formad_beats_atomic\": {},",
            k.formad_beats_atomic()
        );
        let _ = writeln!(o, "      \"series\": [\n{}\n      ]", series.join(",\n"));
        o.push_str("    }");
        kernels.push(o);
    }
    let c = &r.calibration;
    let calibration = format!(
        "{{\"points\": {}, \"seconds_per_cycle\": {:.6e}, \
         \"seconds_per_instruction\": {:.6e}, \"dispatch_cycles_per_op\": {}}}",
        c.points,
        c.seconds_per_cycle,
        c.seconds_per_instruction,
        json_ratio(c.dispatch_cycles_per_op)
    );
    format!(
        "{{\n  \"bench\": \"kernel_exec\",\n  \"backends\": [\"bytecode\", \"aot\"],\n  \
         \"iters\": {},\n  \"threads\": {},\n  \"smoke\": {},\n  \
         \"all_bitwise\": {},\n  \"orderings_agree\": {},\n  \
         \"calibration\": {},\n  \"summary\": {},\n  \
         \"kernels\": [\n{}\n  ]\n}}\n",
        r.iters,
        json_usize_list(&r.threads),
        r.smoke,
        r.all_bitwise,
        r.orderings_agree,
        calibration,
        summary_json(r),
        kernels.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_verifies_and_serializes() {
        let r = kernel_bench(2, &[1, 2], true);
        assert!(r.all_bitwise);
        assert_eq!(r.kernels.len(), 4);
        for k in &r.kernels {
            assert!(k.native_matches_sim, "{} not verified", k.name);
            assert!(!k.disciplines.is_empty(), "{} has no disciplines", k.name);
            // 4 versions × 2 thread counts × both backends when the AOT
            // build succeeded (it degrades to bytecode-only otherwise).
            let expected = if k.aot_available { 16 } else { 8 };
            assert_eq!(
                k.series.len(),
                expected,
                "{}: versions × backends × thread counts",
                k.name
            );
            assert!(k.predicted_formad_over_atomic.is_finite());
            assert!(k.measured_formad_over_atomic > 0.0);
        }
        // The in-tree toolchain builds every kernel; a silent universal
        // fallback would make the AOT columns vacuous.
        assert!(
            r.kernels.iter().all(|k| k.aot_available),
            "AOT must build in-tree"
        );
        // The calibration fit saw every bytecode cell and recovered a
        // positive per-instruction dispatch cost.
        assert_eq!(r.calibration.points, 4 * 4 * 2);
        assert!(r.calibration.seconds_per_instruction > 0.0);
        for k in &r.kernels {
            assert!(
                k.predicted_calibrated.is_finite() && k.predicted_calibrated > 0.0,
                "{}: calibrated prediction missing",
                k.name
            );
        }
        // The stencils and Green-Gauss are fully proven safe: their FormAD
        // discipline must be plain everywhere.
        for k in &r.kernels {
            if k.name.starts_with("stencil") || k.name.starts_with("green-gauss") {
                assert!(k.all_safe, "{} should be all-safe", k.name);
                assert!(
                    k.disciplines.iter().all(|(_, _, m)| m == "plain"),
                    "{}: {:?}",
                    k.name,
                    k.disciplines
                );
            }
        }
        let j = kernel_bench_json(&r);
        assert!(j.contains("\"bench\": \"kernel_exec\""));
        assert!(j.contains("\"version\": \"adj-FormAD\""));
        assert!(j.contains("\"backend\": \"aot\""));
        assert!(j.contains("\"mode\": \"plain\""));
        assert!(j.contains("\"summary\""));
        assert!(j.contains("\"calibration\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
