//! Real-hardware kernel benchmark: the paper's Table-2 protocol executed
//! on the native bytecode backend.
//!
//! For each executable kernel (both stencils, split GFMC, Green-Gauss)
//! the four-version protocol — *Primal*, *Adjoint FormAD*, *Adjoint
//! Atomic*, *Adjoint Reduction* — is compiled to flat bytecode and run
//! on real OS threads via [`formad_machine::NativeEngine`], measuring
//! wall-clock per iteration with the engine and compiled program reused
//! across iterations (the paper's steady-state regime).
//!
//! Three cross-checks guard the numbers:
//!
//! * **bitwise** — every (kernel, version, thread-count) cell is run once
//!   under the simulated interpreter and the native result must be
//!   bitwise identical; a divergent backend would invalidate every
//!   measurement, so the harness panics instead of reporting.
//! * **ordering** — the simulated cost model predicts which of
//!   FormAD/atomic is faster at the check thread count; the measured
//!   wall-clock ordering must be available for comparison (recorded,
//!   and summarized in `orderings_agree`).
//! * **discipline** — the per-array increment modes the FormAD version
//!   actually ran under come straight from the analysis report
//!   ([`formad::FormadAnalysis::discipline_map`]), not from re-deriving
//!   anything here.
//!
//! Results serialize to JSON by hand (`BENCH_kernels.json` at the repo
//! root) — same no-serde policy as `BENCH_prover.json`.

use std::fmt::Write as _;
use std::time::Instant;

use formad_ir::Program;
use formad_kernels::{GfmcCase, GreenGaussCase, StencilCase};
use formad_machine::{compile, lower, run, Bindings, Machine, NativeEngine};

use crate::versions::{adjoint_bindings, ProgramVersions};

/// Default thread counts measured (the host rarely has 18 real cores;
/// oversubscription beyond 4 adds noise without information).
pub const EXEC_THREADS: [usize; 3] = [1, 2, 4];

/// One kernel of the executable suite: primal, bindings, AD in/outputs.
struct KernelCase {
    name: String,
    program: Program,
    base: Bindings,
    indep: &'static [&'static str],
    dep: &'static [&'static str],
}

/// The four executable Table-2 kernels (LBM is analysis-only: FormAD
/// keeps its safeguards, so there is no plain-shared version to race).
/// `smoke` shrinks the sizes to CI scale — ordering and bitwise checks
/// still run, wall-clock numbers are too small to mean anything.
fn cases(smoke: bool) -> Vec<KernelCase> {
    let (st_n, st_sweeps, gf_ns, gf_reps, gg_nodes, gg_reps) = if smoke {
        (512, 1, 16, 1, 512, 1)
    } else {
        (100_000, 2, 96, 2, 50_000, 2)
    };
    let st1 = StencilCase::small(st_n, st_sweeps);
    let st8 = StencilCase::large(st_n, st_sweeps);
    let gf = GfmcCase::new(gf_ns, gf_reps);
    let gg = GreenGaussCase::linear(gg_nodes, gg_reps);
    vec![
        KernelCase {
            name: format!("stencil r=1 n={st_n} sweeps={st_sweeps}"),
            program: st1.ir(),
            base: st1.bindings(0xBEEF),
            indep: StencilCase::independents(),
            dep: StencilCase::dependents(),
        },
        KernelCase {
            name: format!("stencil r=8 n={st_n} sweeps={st_sweeps}"),
            program: st8.ir(),
            base: st8.bindings(0xBEEF),
            indep: StencilCase::independents(),
            dep: StencilCase::dependents(),
        },
        KernelCase {
            name: format!("gfmc ns={gf_ns} reps={gf_reps}"),
            program: gf.ir(),
            base: gf.bindings_split(0xBEEF),
            indep: GfmcCase::independents(),
            dep: GfmcCase::dependents(),
        },
        KernelCase {
            name: format!("green-gauss nodes={gg_nodes} reps={gg_reps}"),
            program: gg.ir(),
            base: gg.bindings(0xBEEF),
            indep: GreenGaussCase::independents(),
            dep: GreenGaussCase::dependents(),
        },
    ]
}

/// Wall-clock samples of one program version at one thread count.
#[derive(Debug)]
pub struct VersionTiming {
    /// Version label (`primal`, `adj-FormAD`, `adj-atomic`,
    /// `adj-reduction`).
    pub version: String,
    /// OS threads used.
    pub threads: usize,
    /// Per-iteration wall-clock (seconds), in measurement order.
    pub iter_s: Vec<f64>,
}

impl VersionTiming {
    /// Fastest iteration — the steady-state estimate benchmarks compare.
    pub fn best_s(&self) -> f64 {
        self.iter_s.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean iteration time.
    pub fn mean_s(&self) -> f64 {
        self.iter_s.iter().sum::<f64>() / self.iter_s.len().max(1) as f64
    }
}

/// Everything measured for one kernel.
#[derive(Debug)]
pub struct KernelExecData {
    /// Kernel label with problem size.
    pub name: String,
    /// True when FormAD proved every adjoint array safe.
    pub all_safe: bool,
    /// `(region, array, mode)` — the increment discipline each adjoint
    /// array ran under in the FormAD version, from the analysis report.
    pub disciplines: Vec<(usize, String, String)>,
    /// True: every cell was cross-run under the simulated interpreter and
    /// found bitwise identical (the harness panics otherwise).
    pub native_matches_sim: bool,
    /// Thread count of the ordering cross-check.
    pub check_threads: usize,
    /// Simulated cost-model prediction: atomic Gcycles / FormAD Gcycles
    /// at `check_threads` (> 1 means FormAD predicted faster).
    pub predicted_formad_over_atomic: f64,
    /// Measured: best atomic wall-clock / best FormAD wall-clock at
    /// `check_threads`.
    pub measured_formad_over_atomic: f64,
    /// Did the measured ordering match the cost model's prediction?
    pub ordering_agrees: bool,
    /// All timings: versions × thread counts.
    pub series: Vec<VersionTiming>,
}

impl KernelExecData {
    /// Did the FormAD adjoint beat the atomic adjoint on real hardware?
    pub fn formad_beats_atomic(&self) -> bool {
        self.measured_formad_over_atomic > 1.0
    }

    /// Best wall-clock of a version at a thread count.
    pub fn best_s(&self, version: &str, threads: usize) -> f64 {
        self.series
            .iter()
            .find(|s| s.version == version && s.threads == threads)
            .unwrap_or_else(|| panic!("no series {version} at T={threads}"))
            .best_s()
    }
}

/// Everything `BENCH_kernels.json` records.
#[derive(Debug)]
pub struct KernelBenchResult {
    /// Timed iterations per cell.
    pub iters: usize,
    /// Thread counts measured.
    pub threads: Vec<usize>,
    /// Smoke sizes?
    pub smoke: bool,
    /// Per-kernel data.
    pub kernels: Vec<KernelExecData>,
    /// All cells bitwise-verified against the simulated interpreter.
    pub all_bitwise: bool,
    /// Every kernel's measured FormAD/atomic ordering matched the cost
    /// model's prediction.
    pub orderings_agree: bool,
}

/// Panic unless the simulated and native results are bitwise identical.
fn assert_bitwise(kernel: &str, version: &str, threads: usize, sim: &Bindings, nat: &Bindings) {
    let ctx = |what: &str| format!("{kernel} / {version} at T={threads}: {what}");
    for (name, v) in &sim.real_scalars {
        let n = nat.real_scalars.get(name).unwrap_or_else(|| {
            panic!("{}", ctx(&format!("native lost scalar `{name}`")));
        });
        assert_eq!(
            v.to_bits(),
            n.to_bits(),
            "{}",
            ctx(&format!("scalar `{name}`: sim {v} vs native {n}"))
        );
    }
    for (name, v) in &sim.int_scalars {
        assert_eq!(
            nat.int_scalars.get(name),
            Some(v),
            "{}",
            ctx(&format!("int scalar `{name}`"))
        );
    }
    for (name, v) in &sim.real_arrays {
        let n = nat.real_arrays.get(name).unwrap_or_else(|| {
            panic!("{}", ctx(&format!("native lost array `{name}`")));
        });
        assert_eq!(
            v.len(),
            n.len(),
            "{}",
            ctx(&format!("array `{name}` length"))
        );
        for (k, (a, b)) in v.iter().zip(n).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}",
                ctx(&format!("array `{name}`[{k}]: sim {a} vs native {b}"))
            );
        }
    }
    for (name, v) in &sim.int_arrays {
        assert_eq!(
            nat.int_arrays.get(name),
            Some(v),
            "{}",
            ctx(&format!("int array `{name}`"))
        );
    }
}

/// Run the benchmark: the four-version protocol over `threads`, `iters`
/// timed iterations per cell, every cell bitwise-verified against the
/// simulated interpreter.
pub fn kernel_bench(iters: usize, threads: &[usize], smoke: bool) -> KernelBenchResult {
    assert!(iters > 0, "need at least one iteration");
    assert!(!threads.is_empty(), "need at least one thread count");
    let check_threads = *threads.iter().max().unwrap();
    let mut kernels = Vec::new();
    for case in cases(smoke) {
        let versions = ProgramVersions::generate(&case.program, case.indep, case.dep);
        let adj_base = adjoint_bindings(&versions.primal, &case.base, case.indep, case.dep);
        let disciplines: Vec<(usize, String, String)> = versions
            .analysis
            .discipline_map()
            .into_iter()
            .map(|(r, a, m)| (r, a, m.to_string()))
            .collect();
        let progs: [(&str, &Program, &Bindings); 4] = [
            ("primal", &versions.primal, &case.base),
            ("adj-FormAD", &versions.adj_formad, &adj_base),
            ("adj-atomic", &versions.adj_atomic, &adj_base),
            ("adj-reduction", &versions.adj_reduction, &adj_base),
        ];
        let mut series = Vec::new();
        let mut gcycles_formad = f64::NAN;
        let mut gcycles_atomic = f64::NAN;
        for &t in threads {
            let mut engine = NativeEngine::new(t);
            // Compile and verify all four versions first (the verification
            // pass doubles as warm-up): native vs simulated, bitwise; the
            // sim run also yields the cost model's cycle prediction for
            // the ordering cross-check.
            let mut compiled = Vec::with_capacity(progs.len());
            for (label, prog, bind) in &progs {
                let lp = lower(prog, bind)
                    .unwrap_or_else(|e| panic!("lowering `{}` failed: {e}", prog.name));
                let bc = compile(&lp, prog)
                    .unwrap_or_else(|e| panic!("compiling `{}` failed: {e}", prog.name));
                let mut nat = (*bind).clone();
                engine
                    .run(&bc, &mut nat)
                    .unwrap_or_else(|e| panic!("native run of `{}` failed: {e}", prog.name));
                let mut sim = (*bind).clone();
                let res = run(prog, &mut sim, &Machine::with_threads(t))
                    .unwrap_or_else(|e| panic!("simulated run of `{}` failed: {e}", prog.name));
                assert_bitwise(&case.name, label, t, &sim, &nat);
                if t == check_threads {
                    let g = res.wall_cycles as f64 / 1e9;
                    match *label {
                        "adj-FormAD" => gcycles_formad = g,
                        "adj-atomic" => gcycles_atomic = g,
                        _ => {}
                    }
                }
                compiled.push((*label, bc, *bind, Vec::with_capacity(iters)));
            }
            // Timed iterations, interleaved round-robin across versions:
            // running each version's iterations back-to-back lets slow
            // drift (frequency scaling, background load) bias whichever
            // version happens to run in the quieter window; interleaving
            // spreads any time-correlated noise evenly over all four.
            for _ in 0..iters {
                for (label, bc, bind, iter_s) in &mut compiled {
                    let mut b = Bindings::clone(bind);
                    let t0 = Instant::now();
                    engine
                        .run(bc, &mut b)
                        .unwrap_or_else(|e| panic!("native run of `{label}` failed: {e}"));
                    iter_s.push(t0.elapsed().as_secs_f64());
                }
            }
            for (label, _, _, iter_s) in compiled {
                series.push(VersionTiming {
                    version: label.to_string(),
                    threads: t,
                    iter_s,
                });
            }
        }
        let mut data = KernelExecData {
            name: case.name,
            all_safe: versions.analysis.all_safe(),
            disciplines,
            native_matches_sim: true,
            check_threads,
            predicted_formad_over_atomic: gcycles_atomic / gcycles_formad,
            measured_formad_over_atomic: 0.0,
            ordering_agrees: false,
            series,
        };
        data.measured_formad_over_atomic =
            data.best_s("adj-atomic", check_threads) / data.best_s("adj-FormAD", check_threads);
        data.ordering_agrees =
            (data.predicted_formad_over_atomic >= 1.0) == (data.measured_formad_over_atomic >= 1.0);
        kernels.push(data);
    }
    KernelBenchResult {
        iters,
        threads: threads.to_vec(),
        smoke,
        all_bitwise: true,
        orderings_agree: kernels.iter().all(|k| k.ordering_agrees),
        kernels,
    }
}

fn json_usize_list(xs: &[usize]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn json_f64_list(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x:.9}")).collect();
    format!("[{}]", items.join(", "))
}

/// Hand-rolled JSON for [`KernelBenchResult`] — stable key order,
/// newline-terminated (`BENCH_kernels.json`).
pub fn kernel_bench_json(r: &KernelBenchResult) -> String {
    let mut kernels = Vec::new();
    for k in &r.kernels {
        let disciplines: Vec<String> = k
            .disciplines
            .iter()
            .map(|(region, array, mode)| {
                format!(
                    "        {{\"region\": {region}, \"array\": \"{array}\", \
                     \"mode\": \"{mode}\"}}"
                )
            })
            .collect();
        let series: Vec<String> = k
            .series
            .iter()
            .map(|s| {
                format!(
                    "        {{\"version\": \"{}\", \"threads\": {}, \
                     \"best_s\": {:.9}, \"mean_s\": {:.9}, \"iter_s\": {}}}",
                    s.version,
                    s.threads,
                    s.best_s(),
                    s.mean_s(),
                    json_f64_list(&s.iter_s)
                )
            })
            .collect();
        let mut o = String::from("    {\n");
        let _ = writeln!(o, "      \"name\": \"{}\",", k.name);
        let _ = writeln!(o, "      \"all_safe\": {},", k.all_safe);
        let _ = writeln!(
            o,
            "      \"disciplines\": [\n{}\n      ],",
            disciplines.join(",\n")
        );
        let _ = writeln!(o, "      \"native_matches_sim\": {},", k.native_matches_sim);
        let _ = writeln!(o, "      \"check_threads\": {},", k.check_threads);
        let _ = writeln!(
            o,
            "      \"predicted_formad_over_atomic\": {:.4},",
            k.predicted_formad_over_atomic
        );
        let _ = writeln!(
            o,
            "      \"measured_formad_over_atomic\": {:.4},",
            k.measured_formad_over_atomic
        );
        let _ = writeln!(o, "      \"ordering_agrees\": {},", k.ordering_agrees);
        let _ = writeln!(
            o,
            "      \"formad_beats_atomic\": {},",
            k.formad_beats_atomic()
        );
        let _ = writeln!(o, "      \"series\": [\n{}\n      ]", series.join(",\n"));
        o.push_str("    }");
        kernels.push(o);
    }
    format!(
        "{{\n  \"bench\": \"kernel_exec\",\n  \"backend\": \"native\",\n  \
         \"iters\": {},\n  \"threads\": {},\n  \"smoke\": {},\n  \
         \"all_bitwise\": {},\n  \"orderings_agree\": {},\n  \
         \"kernels\": [\n{}\n  ]\n}}\n",
        r.iters,
        json_usize_list(&r.threads),
        r.smoke,
        r.all_bitwise,
        r.orderings_agree,
        kernels.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_verifies_and_serializes() {
        let r = kernel_bench(2, &[1, 2], true);
        assert!(r.all_bitwise);
        assert_eq!(r.kernels.len(), 4);
        for k in &r.kernels {
            assert!(k.native_matches_sim, "{} not verified", k.name);
            assert!(!k.disciplines.is_empty(), "{} has no disciplines", k.name);
            assert_eq!(
                k.series.len(),
                8,
                "{}: 4 versions × 2 thread counts",
                k.name
            );
            assert!(k.predicted_formad_over_atomic.is_finite());
            assert!(k.measured_formad_over_atomic > 0.0);
        }
        // The stencils and Green-Gauss are fully proven safe: their FormAD
        // discipline must be plain everywhere.
        for k in &r.kernels {
            if k.name.starts_with("stencil") || k.name.starts_with("green-gauss") {
                assert!(k.all_safe, "{} should be all-safe", k.name);
                assert!(
                    k.disciplines.iter().all(|(_, _, m)| m == "plain"),
                    "{}: {:?}",
                    k.name,
                    k.disciplines
                );
            }
        }
        let j = kernel_bench_json(&r);
        assert!(j.contains("\"bench\": \"kernel_exec\""));
        assert!(j.contains("\"version\": \"adj-FormAD\""));
        assert!(j.contains("\"mode\": \"plain\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
