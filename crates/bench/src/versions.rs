//! The five program versions of the paper's evaluation protocol (§7):
//! *Primal* (parallel + serial baseline), *Adjoint Serial*, *Adjoint
//! FormAD*, *Adjoint Atomic*, *Adjoint Reduction*.

use formad::{Formad, FormadOptions, IncMode, ParallelTreatment};
use formad_ir::Program;
use formad_machine::Bindings;

/// All program versions generated from one primal.
#[derive(Debug)]
pub struct ProgramVersions {
    /// Original parallel primal.
    pub primal: Program,
    /// Primal with pragmas stripped (speedup baseline).
    pub primal_serial: Program,
    /// Reverse-mode adjoint, no pragmas.
    pub adj_serial: Program,
    /// Adjoint with FormAD's per-array plan.
    pub adj_formad: Program,
    /// Adjoint with atomics on every shared increment.
    pub adj_atomic: Program,
    /// Adjoint with reduction privatization on every shared incremented
    /// array (mixed-access arrays fall back to atomics, see `formad-ad`).
    pub adj_reduction: Program,
    /// The analysis that produced the FormAD plan.
    pub analysis: formad::FormadAnalysis,
}

impl ProgramVersions {
    /// Generate every version.
    pub fn generate(primal: &Program, indep: &[&str], dep: &[&str]) -> ProgramVersions {
        let tool = Formad::new(FormadOptions::new(indep, dep));
        let diff = tool.differentiate(primal).expect("formad pipeline");
        ProgramVersions {
            primal: primal.clone(),
            primal_serial: primal.strip_parallel(),
            adj_serial: tool
                .adjoint_with(primal, ParallelTreatment::Serial)
                .expect("serial adjoint"),
            adj_formad: diff.adjoint,
            adj_atomic: tool
                .adjoint_with(primal, ParallelTreatment::Uniform(IncMode::Atomic))
                .expect("atomic adjoint"),
            adj_reduction: tool
                .adjoint_with(primal, ParallelTreatment::Uniform(IncMode::Reduction))
                .expect("reduction adjoint"),
            analysis: diff.analysis,
        }
    }
}

/// Extend primal bindings with adjoint seeds: dependents' adjoints are
/// seeded with 1.0 (a full backpropagation pass), independents' adjoints
/// accumulate from zero.
pub fn adjoint_bindings(
    primal: &Program,
    base: &Bindings,
    indep: &[&str],
    dep: &[&str],
) -> Bindings {
    let mut b = base.clone();
    for name in dep {
        let len = base
            .get_real_array(name)
            .unwrap_or_else(|| panic!("dependent `{name}` unbound"))
            .len();
        b.real_arrays.insert(format!("{name}b"), vec![1.0; len]);
    }
    for name in indep {
        let key = format!("{name}b");
        b.real_arrays.entry(key).or_insert_with(|| {
            let len = base
                .get_real_array(name)
                .unwrap_or_else(|| panic!("independent `{name}` unbound"))
                .len();
            vec![0.0; len]
        });
    }
    let _ = primal;
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_kernels::StencilCase;

    #[test]
    fn versions_differ_as_expected() {
        let c = StencilCase::small(32, 1);
        let v = ProgramVersions::generate(
            &c.ir(),
            StencilCase::independents(),
            StencilCase::dependents(),
        );
        let formad_txt = formad_ir::program_to_string(&v.adj_formad);
        let atomic_txt = formad_ir::program_to_string(&v.adj_atomic);
        let red_txt = formad_ir::program_to_string(&v.adj_reduction);
        let serial_txt = formad_ir::program_to_string(&v.adj_serial);
        assert!(!formad_txt.contains("atomic"));
        assert!(atomic_txt.contains("!$omp atomic"));
        assert!(red_txt.contains("reduction(+: uoldb)"));
        assert!(!serial_txt.contains("!$omp"));
        assert!(v.analysis.all_safe());
    }
}
