//! # formad-bench
//!
//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (§7) on the simulated shared-memory machine. The `repro`
//! binary is the command-line front end; this library holds the reusable
//! pieces so integration tests can assert the figures' *shape* (who wins,
//! by roughly what factor, where crossovers fall).

pub mod ablation;
pub mod experiments;
pub mod kernel_bench;
pub mod prover_bench;
pub mod versions;

pub use ablation::{ablation_grid, ablation_text, AblationRow};
pub use experiments::{
    gfmc_figure, green_gauss_figure, lbm_report, stencil_figure, table1, FigureData, Table1Row,
    PAPER_THREADS,
};
pub use kernel_bench::{
    kernel_bench, kernel_bench_json, Calibration, KernelBenchResult, KernelExecData, VersionTiming,
    BACKENDS, EXEC_THREADS,
};
pub use prover_bench::{
    prover_bench, prover_bench_json, prover_phases, prover_phases_json, PhaseAttribution,
    ProverBenchResult, ProverPhasesResult,
};
pub use versions::{adjoint_bindings, ProgramVersions};
