//! Prover-throughput benchmark: the paper's six-kernel analysis suite run
//! end to end under two configurations.
//!
//! * **baseline** — `jobs = 1`, no proof cache: the sequential seed path,
//!   every query solved from scratch.
//! * **optimized** — a worker pool (`jobs`) plus ONE [`ProofCache`] shared
//!   across every array, region, kernel, and iteration of the suite.
//!
//! Each configuration analyzes the whole suite `iters` times. Repeated
//! iterations model the realistic workload the cache targets: a build
//! system or test harness re-analyzing mostly-unchanged kernels, where
//! canonically identical queries recur across runs. The benchmark also
//! cross-checks every per-array verdict between the two configurations —
//! a speedup obtained by changing an answer would be a soundness bug, so
//! the harness refuses to report one.
//!
//! Results serialize to JSON by hand (`BENCH_prover.json` at the repo
//! root) — the workspace takes no serde dependency for one flat record.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use formad::{CacheAttr, Decision, Formad, FormadOptions, SearchCore, TraceEvent, TraceSink};
use formad_ir::Program;
use formad_kernels::{lbm, GfmcCase, GreenGaussCase, StencilCase};
use formad_smt::{ProofCache, SolverStats};

/// One kernel of the suite: a primal program plus its differentiation
/// in- and outputs.
#[derive(Debug)]
pub struct SuiteKernel {
    /// Table-1 problem name.
    pub name: String,
    /// Primal program.
    pub program: Program,
    /// Differentiation inputs.
    pub independents: Vec<String>,
    /// Differentiation outputs.
    pub dependents: Vec<String>,
}

/// The six Table-1 problems at analysis-relevant sizes (the prover's
/// work depends on the loop structure, not the array extents).
pub fn suite() -> Vec<SuiteKernel> {
    let own = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    let gf = GfmcCase::new(16, 1);
    vec![
        SuiteKernel {
            name: "stencil 1".into(),
            program: StencilCase::small(64, 1).ir(),
            independents: own(StencilCase::independents()),
            dependents: own(StencilCase::dependents()),
        },
        SuiteKernel {
            name: "stencil 8".into(),
            program: StencilCase::large(128, 1).ir(),
            independents: own(StencilCase::independents()),
            dependents: own(StencilCase::dependents()),
        },
        SuiteKernel {
            name: "GFMC".into(),
            program: gf.ir(),
            independents: own(GfmcCase::independents()),
            dependents: own(GfmcCase::dependents()),
        },
        SuiteKernel {
            name: "GFMC*".into(),
            program: gf.ir_star(),
            independents: own(GfmcCase::independents()),
            dependents: own(GfmcCase::dependents()),
        },
        SuiteKernel {
            name: "LBM".into(),
            program: lbm::lbm_ir(),
            independents: own(lbm::independents()),
            dependents: own(lbm::dependents()),
        },
        SuiteKernel {
            name: "GreenGauss".into(),
            program: GreenGaussCase::linear(64, 1).ir(),
            independents: own(GreenGaussCase::independents()),
            dependents: own(GreenGaussCase::dependents()),
        },
    ]
}

/// Per-array verdicts of one suite pass, flattened for comparison:
/// `(kernel, region, array, shared?)` in deterministic order.
type Verdicts = Vec<(String, usize, String, bool)>;

/// Analyze every kernel once; returns elapsed wall-clock, aggregated
/// prover stats, and the flattened verdicts.
fn run_suite_once(
    kernels: &[SuiteKernel],
    jobs: usize,
    cache: &Option<ProofCache>,
    core: SearchCore,
) -> (Duration, SolverStats, Verdicts) {
    let mut stats = SolverStats::default();
    let mut verdicts = Verdicts::new();
    let start = Instant::now();
    for k in kernels {
        let indep: Vec<&str> = k.independents.iter().map(|s| s.as_str()).collect();
        let dep: Vec<&str> = k.dependents.iter().map(|s| s.as_str()).collect();
        let mut opts = FormadOptions::new(&indep, &dep);
        opts.region.jobs = jobs;
        opts.region.cache = cache.clone();
        opts.region.search_core = core;
        let a = Formad::new(opts).analyze(&k.program).expect("analysis");
        stats.merge(&a.stats);
        for (ri, region) in a.regions.iter().enumerate() {
            let mut arrays: Vec<&String> = region.decisions.keys().collect();
            arrays.sort();
            for arr in arrays {
                let shared = matches!(region.decisions[arr], Decision::Shared);
                verdicts.push((k.name.clone(), ri, arr.clone(), shared));
            }
        }
    }
    (start.elapsed(), stats, verdicts)
}

/// Everything `BENCH_prover.json` records.
#[derive(Debug)]
pub struct ProverBenchResult {
    /// Suite passes per configuration.
    pub iters: usize,
    /// Worker threads of the optimized configuration.
    pub jobs: usize,
    /// Total baseline wall-clock (seconds).
    pub baseline_s: f64,
    /// Total optimized wall-clock (seconds).
    pub optimized_s: f64,
    /// `baseline_s / optimized_s`.
    pub speedup: f64,
    /// Per-iteration baseline times.
    pub baseline_iter_s: Vec<f64>,
    /// Per-iteration optimized times.
    pub optimized_iter_s: Vec<f64>,
    /// Cache hits across the whole optimized run.
    pub cache_hits: u64,
    /// Cache misses across the whole optimized run.
    pub cache_misses: u64,
    /// Cache inserts across the whole optimized run.
    pub cache_inserts: u64,
    /// Prover queries per suite pass (identical across configurations).
    pub queries_per_pass: u64,
    /// True when every per-array verdict agreed between configurations.
    pub verdicts_agree: bool,
    /// True when the legacy enumerate-and-split core reproduced every
    /// per-array verdict of the CDCL core on an uncached sequential pass.
    pub search_cores_agree: bool,
    /// Linear-feasibility core calls of one uncached CDCL suite pass.
    pub lia_calls_per_pass: u64,
    /// Same measurement under the legacy core (the old cost of the suite).
    pub legacy_lia_calls_per_pass: u64,
    /// Watched-literal unit propagations per uncached CDCL pass.
    pub propagations_per_pass: u64,
    /// Conflicts analyzed per uncached CDCL pass.
    pub conflicts_per_pass: u64,
    /// Clauses learned per uncached CDCL pass.
    pub learned_clauses_per_pass: u64,
    /// Restarts per uncached CDCL pass.
    pub restarts_per_pass: u64,
    /// Queries fully discharged by presolve per uncached CDCL pass.
    pub presolve_discharges_per_pass: u64,
}

/// Run the benchmark: `iters` suite passes sequential-uncached, then
/// `iters` passes with `jobs` workers and one shared cache.
///
/// Panics if any per-array verdict differs between the configurations —
/// the cache and the worker pool are pure accelerators and a disagreement
/// would invalidate the measurement (and the tool).
pub fn prover_bench(iters: usize, jobs: usize) -> ProverBenchResult {
    assert!(iters > 0, "need at least one iteration");
    let kernels = suite();

    let mut baseline_iter_s = Vec::with_capacity(iters);
    let mut baseline_verdicts = None;
    let mut pass_stats = SolverStats::default();
    for _ in 0..iters {
        let (t, stats, v) = run_suite_once(&kernels, 1, &None, SearchCore::Cdcl);
        baseline_iter_s.push(t.as_secs_f64());
        pass_stats = stats;
        baseline_verdicts = Some(v);
    }

    let shared = Some(ProofCache::new());
    let mut optimized_iter_s = Vec::with_capacity(iters);
    let mut optimized_verdicts = None;
    let mut hits = 0;
    let mut misses = 0;
    let mut inserts = 0;
    for _ in 0..iters {
        let (t, stats, v) = run_suite_once(&kernels, jobs, &shared, SearchCore::Cdcl);
        optimized_iter_s.push(t.as_secs_f64());
        hits += stats.cache_hits;
        misses += stats.cache_misses;
        inserts += stats.cache_inserts;
        optimized_verdicts = Some(v);
    }

    // Differential oracle: one uncached sequential pass under the legacy
    // enumerate-and-split core. The CDCL core is an accelerator, not a
    // different theory — a verdict flip on Table 1 is a soundness bug and
    // aborts the benchmark (the CI smoke run relies on this).
    let (_, legacy_stats, legacy_verdicts) = run_suite_once(&kernels, 1, &None, SearchCore::Legacy);

    let baseline_verdicts = baseline_verdicts.expect("baseline ran");
    let optimized_verdicts = optimized_verdicts.expect("optimized ran");
    let verdicts_agree = baseline_verdicts == optimized_verdicts;
    assert!(
        verdicts_agree,
        "verdicts diverged between configurations:\n  baseline  {baseline_verdicts:?}\n  \
         optimized {optimized_verdicts:?}"
    );
    let search_cores_agree = baseline_verdicts == legacy_verdicts;
    assert!(
        search_cores_agree,
        "verdicts diverged between search cores:\n  cdcl   {baseline_verdicts:?}\n  \
         legacy {legacy_verdicts:?}"
    );

    let baseline_s: f64 = baseline_iter_s.iter().sum();
    let optimized_s: f64 = optimized_iter_s.iter().sum();
    ProverBenchResult {
        iters,
        jobs,
        baseline_s,
        optimized_s,
        speedup: baseline_s / optimized_s.max(f64::MIN_POSITIVE),
        baseline_iter_s,
        optimized_iter_s,
        cache_hits: hits,
        cache_misses: misses,
        cache_inserts: inserts,
        queries_per_pass: pass_stats.checks,
        verdicts_agree,
        search_cores_agree,
        lia_calls_per_pass: pass_stats.lia_calls,
        legacy_lia_calls_per_pass: legacy_stats.lia_calls,
        propagations_per_pass: pass_stats.propagations,
        conflicts_per_pass: pass_stats.conflicts,
        learned_clauses_per_pass: pass_stats.learned_clauses,
        restarts_per_pass: pass_stats.restarts,
        presolve_discharges_per_pass: pass_stats.presolve_discharges,
    }
}

// ---------------------------------------------------------------------
// Per-phase timing attribution (from the structured trace).
// ---------------------------------------------------------------------

/// Wall-clock total of one named phase across a traced suite pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAttribution {
    /// Phase name: pipeline phases keep their name (`validate`,
    /// `activity`, `ad`), region-level phases get a `region-` prefix
    /// (`region-extract`, `region-validate`, `region-prove`).
    pub phase: String,
    /// Total wall-clock attributed (seconds).
    pub total_s: f64,
    /// Phase events aggregated.
    pub events: u64,
}

/// Where a traced suite pass spent its time, split by pipeline phase and
/// — inside the proof fan-out — by cache attribution. `query_*` times
/// overlap `region-prove` (queries run inside that phase); phase totals
/// across regions can exceed wall-clock when `jobs > 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProverPhasesResult {
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock of the traced pass (seconds).
    pub wall_s: f64,
    /// Per-phase totals, sorted by phase name.
    pub phases: Vec<PhaseAttribution>,
    /// Total prover-query time (seconds) and count.
    pub query_s: f64,
    pub queries: u64,
    /// Query time answered from the canonical proof cache.
    pub query_hit_s: f64,
    pub query_hits: u64,
    /// Query time solved from scratch (cache miss).
    pub query_miss_s: f64,
    pub query_misses: u64,
    /// Linear-feasibility core calls across all queries.
    pub lia_calls: u64,
    /// Branch nodes explored across all queries.
    pub branches: u64,
    /// Watched-literal unit propagations across all queries.
    pub propagations: u64,
    /// Conflicts analyzed across all queries.
    pub conflicts: u64,
    /// Distribution of `lia_calls` over cache-miss queries (hits cost
    /// zero): median, 90th percentile, and maximum.
    pub miss_lia_p50: u64,
    pub miss_lia_p90: u64,
    pub miss_lia_max: u64,
}

/// `p`-th percentile (nearest-rank) of an unsorted sample; 0 when empty.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * p).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Analyze the suite once with tracing on (shared cache, `jobs` workers)
/// and aggregate where the time went from the trace's perf data.
pub fn prover_phases(jobs: usize) -> ProverPhasesResult {
    let kernels = suite();
    let cache = Some(ProofCache::new());
    let mut phases: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    let mut r = ProverPhasesResult {
        jobs,
        wall_s: 0.0,
        phases: Vec::new(),
        query_s: 0.0,
        queries: 0,
        query_hit_s: 0.0,
        query_hits: 0,
        query_miss_s: 0.0,
        query_misses: 0,
        lia_calls: 0,
        branches: 0,
        propagations: 0,
        conflicts: 0,
        miss_lia_p50: 0,
        miss_lia_p90: 0,
        miss_lia_max: 0,
    };
    let mut miss_lia: Vec<u64> = Vec::new();
    let start = Instant::now();
    for k in kernels {
        let indep: Vec<&str> = k.independents.iter().map(|s| s.as_str()).collect();
        let dep: Vec<&str> = k.dependents.iter().map(|s| s.as_str()).collect();
        let sink = TraceSink::new();
        let mut opts = FormadOptions::new(&indep, &dep);
        opts.region.jobs = jobs;
        opts.region.cache = cache.clone();
        opts.region.search_core = SearchCore::Cdcl;
        opts.region.trace = Some(sink.clone());
        Formad::new(opts).analyze(&k.program).expect("analysis");
        for e in sink.snapshot() {
            match e {
                TraceEvent::Phase { id, dur_us } => {
                    // `phase/ad` → `ad`; `r3/phase/prove` → `region-prove`.
                    let name = match id.split_once("/phase/") {
                        Some((_, name)) => format!("region-{name}"),
                        None => id.trim_start_matches("phase/").to_string(),
                    };
                    let slot = phases.entry(name).or_insert((0.0, 0));
                    slot.0 += dur_us as f64 / 1e6;
                    slot.1 += 1;
                }
                TraceEvent::Query { perf, .. } => {
                    let s = perf.dur_us as f64 / 1e6;
                    r.query_s += s;
                    r.queries += 1;
                    r.lia_calls += perf.lia_calls;
                    r.branches += perf.branches;
                    r.propagations += perf.propagations;
                    r.conflicts += perf.conflicts;
                    match perf.cache {
                        CacheAttr::Hit => {
                            r.query_hit_s += s;
                            r.query_hits += 1;
                        }
                        CacheAttr::Miss => {
                            r.query_miss_s += s;
                            r.query_misses += 1;
                            miss_lia.push(perf.lia_calls);
                        }
                        CacheAttr::Off => {}
                    }
                }
                _ => {}
            }
        }
    }
    r.wall_s = start.elapsed().as_secs_f64();
    miss_lia.sort_unstable();
    r.miss_lia_p50 = percentile(&miss_lia, 50);
    r.miss_lia_p90 = percentile(&miss_lia, 90);
    r.miss_lia_max = miss_lia.last().copied().unwrap_or(0);
    r.phases = phases
        .into_iter()
        .map(|(phase, (total_s, events))| PhaseAttribution {
            phase,
            total_s,
            events,
        })
        .collect();
    r
}

/// Hand-rolled JSON for [`ProverPhasesResult`] (`BENCH_prover_phases.json`).
pub fn prover_phases_json(r: &ProverPhasesResult) -> String {
    let phases: Vec<String> = r
        .phases
        .iter()
        .map(|p| {
            format!(
                "    {{\"phase\": \"{}\", \"total_s\": {:.6}, \"events\": {}}}",
                p.phase, p.total_s, p.events
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"prover_phases\",\n  \"suite\": \"table1\",\n  \
         \"jobs\": {},\n  \"wall_s\": {:.6},\n  \"phases\": [\n{}\n  ],\n  \
         \"query_s\": {:.6},\n  \"queries\": {},\n  \
         \"query_hit_s\": {:.6},\n  \"query_hits\": {},\n  \
         \"query_miss_s\": {:.6},\n  \"query_misses\": {},\n  \
         \"lia_calls\": {},\n  \"branches\": {},\n  \
         \"propagations\": {},\n  \"conflicts\": {},\n  \
         \"miss_lia_p50\": {},\n  \"miss_lia_p90\": {},\n  \
         \"miss_lia_max\": {}\n}}\n",
        r.jobs,
        r.wall_s,
        phases.join(",\n"),
        r.query_s,
        r.queries,
        r.query_hit_s,
        r.query_hits,
        r.query_miss_s,
        r.query_misses,
        r.lia_calls,
        r.branches,
        r.propagations,
        r.conflicts,
        r.miss_lia_p50,
        r.miss_lia_p90,
        r.miss_lia_max,
    )
}

fn json_f64_list(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x:.6}")).collect();
    format!("[{}]", items.join(", "))
}

/// Hand-rolled JSON for [`ProverBenchResult`] — a flat record, stable key
/// order, newline-terminated.
pub fn prover_bench_json(r: &ProverBenchResult) -> String {
    format!(
        "{{\n  \"bench\": \"prover_suite\",\n  \"suite\": \"table1\",\n  \
         \"iters\": {},\n  \"jobs\": {},\n  \"baseline_s\": {:.6},\n  \
         \"optimized_s\": {:.6},\n  \"speedup\": {:.3},\n  \
         \"baseline_iter_s\": {},\n  \"optimized_iter_s\": {},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"cache_inserts\": {},\n  \"queries_per_pass\": {},\n  \
         \"verdicts_agree\": {},\n  \"search_cores_agree\": {},\n  \
         \"lia_calls_per_pass\": {},\n  \"legacy_lia_calls_per_pass\": {},\n  \
         \"propagations_per_pass\": {},\n  \"conflicts_per_pass\": {},\n  \
         \"learned_clauses_per_pass\": {},\n  \"restarts_per_pass\": {},\n  \
         \"presolve_discharges_per_pass\": {}\n}}\n",
        r.iters,
        r.jobs,
        r.baseline_s,
        r.optimized_s,
        r.speedup,
        json_f64_list(&r.baseline_iter_s),
        json_f64_list(&r.optimized_iter_s),
        r.cache_hits,
        r.cache_misses,
        r.cache_inserts,
        r.queries_per_pass,
        r.verdicts_agree,
        r.search_cores_agree,
        r.lia_calls_per_pass,
        r.legacy_lia_calls_per_pass,
        r.propagations_per_pass,
        r.conflicts_per_pass,
        r.learned_clauses_per_pass,
        r.restarts_per_pass,
        r.presolve_discharges_per_pass,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_verdicts_agree() {
        let r = prover_bench(2, 2);
        assert!(r.verdicts_agree);
        assert!(r.search_cores_agree, "cdcl and legacy cores diverged");
        assert!(r.queries_per_pass > 0);
        // The second cached pass must answer queries from the cache.
        assert!(r.cache_hits > 0, "no cache hits across {} passes", r.iters);
        assert!(r.baseline_s > 0.0 && r.optimized_s > 0.0);
        // The CDCL core must do strictly less linear-arithmetic work than
        // the legacy splitter on the same suite — that is its entire point.
        assert!(
            r.lia_calls_per_pass < r.legacy_lia_calls_per_pass,
            "cdcl {} vs legacy {} lia calls",
            r.lia_calls_per_pass,
            r.legacy_lia_calls_per_pass
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[1, 2, 3, 4], 50), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 90), 4);
        assert_eq!(percentile(&[1, 2, 3, 4, 100], 90), 100);
    }

    #[test]
    fn phases_attribute_time_and_queries() {
        let r = prover_phases(2);
        assert!(r.wall_s > 0.0);
        assert!(r.queries > 0);
        // The suite must exercise the whole ladder of phases.
        let names: Vec<&str> = r.phases.iter().map(|p| p.phase.as_str()).collect();
        for want in ["activity", "region-extract", "region-prove"] {
            assert!(names.contains(&want), "missing phase `{want}` in {names:?}");
        }
        // Since the solver consults the cache only for queries its
        // presolve prefix cannot discharge, most (possibly all) traced
        // region queries carry the `off` attribution; hit/miss counts
        // can only account for a subset of the queries.
        assert!(r.query_hits + r.query_misses <= r.queries);
        assert!(r.query_hit_s + r.query_miss_s <= r.query_s + 1e-9);
        let j = prover_phases_json(&r);
        assert!(j.contains("\"bench\": \"prover_phases\""));
        assert!(j.contains("\"phase\": \"region-prove\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = ProverBenchResult {
            iters: 1,
            jobs: 4,
            baseline_s: 1.0,
            optimized_s: 0.25,
            speedup: 4.0,
            baseline_iter_s: vec![1.0],
            optimized_iter_s: vec![0.25],
            cache_hits: 10,
            cache_misses: 5,
            cache_inserts: 5,
            queries_per_pass: 15,
            verdicts_agree: true,
            search_cores_agree: true,
            lia_calls_per_pass: 40,
            legacy_lia_calls_per_pass: 400,
            propagations_per_pass: 30,
            conflicts_per_pass: 2,
            learned_clauses_per_pass: 2,
            restarts_per_pass: 0,
            presolve_discharges_per_pass: 9,
        };
        let j = prover_bench_json(&r);
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"speedup\": 4.000"));
        assert!(j.contains("\"optimized_iter_s\": [0.250000]"));
        assert!(j.contains("\"search_cores_agree\": true"));
        assert!(j.contains("\"legacy_lia_calls_per_pass\": 400"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
