//! Kernel-level validation of the native bytecode backend: every
//! generated adjoint version of every executable Table-2 kernel must be
//! (a) bitwise identical between the simulated interpreter and the
//! native executor, and (b) a correct derivative when executed natively
//! (finite-difference dot-product test with a native runner).

use formad_bench::{adjoint_bindings, ProgramVersions};
use formad_ir::Program;
use formad_kernels::{GfmcCase, GreenGaussCase, StencilCase};
use formad_machine::{dot_product_test_with, run, run_native, Bindings, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_vec(seed: u64, n: usize) -> Vec<f64> {
    let mut r = StdRng::seed_from_u64(seed);
    (0..n).map(|_| r.gen_range(-1.0..1.0)).collect()
}

/// One executable kernel at test scale: primal, bindings, AD in/outputs.
struct Case {
    name: &'static str,
    program: Program,
    base: Bindings,
    indep: &'static [&'static str],
    dep: &'static [&'static str],
}

fn cases() -> Vec<Case> {
    let st1 = StencilCase::small(48, 2);
    let st8 = StencilCase::large(48, 1);
    let gf = GfmcCase::new(8, 1);
    let gg = GreenGaussCase::linear(40, 2);
    vec![
        Case {
            name: "stencil r=1",
            program: st1.ir(),
            base: st1.bindings(7),
            indep: StencilCase::independents(),
            dep: StencilCase::dependents(),
        },
        Case {
            name: "stencil r=8",
            program: st8.ir(),
            base: st8.bindings(7),
            indep: StencilCase::independents(),
            dep: StencilCase::dependents(),
        },
        Case {
            name: "gfmc",
            program: gf.ir(),
            base: gf.bindings_split(7),
            indep: GfmcCase::independents(),
            dep: GfmcCase::dependents(),
        },
        Case {
            name: "green-gauss",
            program: gg.ir(),
            base: gg.bindings(7),
            indep: GreenGaussCase::independents(),
            dep: GreenGaussCase::dependents(),
        },
    ]
}

fn assert_bitwise(ctx: &str, sim: &Bindings, nat: &Bindings) {
    for (name, v) in &sim.real_scalars {
        let n = nat.real_scalars[name];
        assert_eq!(v.to_bits(), n.to_bits(), "{ctx}: scalar `{name}`");
    }
    for (name, v) in &sim.real_arrays {
        let n = &nat.real_arrays[name];
        assert_eq!(v.len(), n.len(), "{ctx}: array `{name}` length");
        for (k, (a, b)) in v.iter().zip(n).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{ctx}: array `{name}`[{k}]: sim {a} vs native {b}"
            );
        }
    }
    for (name, v) in &sim.int_scalars {
        assert_eq!(nat.int_scalars.get(name), Some(v), "{ctx}: int `{name}`");
    }
    for (name, v) in &sim.int_arrays {
        assert_eq!(nat.int_arrays.get(name), Some(v), "{ctx}: int arr `{name}`");
    }
}

/// Every kernel × every discipline (FormAD plan / uniform atomic /
/// uniform reduction, plus the primal) × {1, 4} threads: the native
/// executor must reproduce the simulated interpreter bit for bit.
#[test]
fn all_kernels_all_disciplines_bitwise() {
    for case in cases() {
        let versions = ProgramVersions::generate(&case.program, case.indep, case.dep);
        let adj_base = adjoint_bindings(&versions.primal, &case.base, case.indep, case.dep);
        let progs: [(&str, &Program, &Bindings); 4] = [
            ("primal", &versions.primal, &case.base),
            ("adj-FormAD", &versions.adj_formad, &adj_base),
            ("adj-atomic", &versions.adj_atomic, &adj_base),
            ("adj-reduction", &versions.adj_reduction, &adj_base),
        ];
        for (label, prog, bind) in progs {
            for threads in [1usize, 4] {
                let ctx = format!("{} / {label} at T={threads}", case.name);
                let mut sim = bind.clone();
                run(prog, &mut sim, &Machine::with_threads(threads))
                    .unwrap_or_else(|e| panic!("{ctx}: sim run failed: {e}"));
                let mut nat = bind.clone();
                run_native(prog, &mut nat, threads)
                    .unwrap_or_else(|e| panic!("{ctx}: native run failed: {e}"));
                assert_bitwise(&ctx, &sim, &nat);
            }
        }
    }
}

/// The natively executed adjoints must also be *correct* derivatives:
/// finite-difference dot-product test with both the primal and the
/// adjoint run through the bytecode executor.
#[test]
fn native_adjoints_pass_fd_check() {
    for case in cases() {
        let versions = ProgramVersions::generate(&case.program, case.indep, case.dep);
        // Nonlinear kernels (gfmc's tanh) leave finite differences less
        // exact than the linear stencils.
        let tol = if case.name == "gfmc" { 1e-4 } else { 1e-6 };
        let independents: Vec<(&str, Vec<f64>)> = case
            .indep
            .iter()
            .enumerate()
            .map(|(k, name)| {
                let len = case.base.get_real_array(name).unwrap().len();
                (*name, rand_vec(100 + k as u64, len))
            })
            .collect();
        let dependents: Vec<(&str, Vec<f64>)> = case
            .dep
            .iter()
            .enumerate()
            .map(|(k, name)| {
                let len = case.base.get_real_array(name).unwrap().len();
                (*name, rand_vec(200 + k as u64, len))
            })
            .collect();
        for (label, adj) in [
            ("adj-FormAD", &versions.adj_formad),
            ("adj-atomic", &versions.adj_atomic),
            ("adj-reduction", &versions.adj_reduction),
        ] {
            for threads in [1usize, 4] {
                let t = dot_product_test_with(
                    &versions.primal,
                    adj,
                    &case.base,
                    &independents,
                    &dependents,
                    1e-6,
                    "b",
                    |p, b| run_native(p, b, threads),
                )
                .unwrap_or_else(|e| panic!("{} / {label} T={threads}: {e}", case.name));
                assert!(
                    t.passes(tol),
                    "{} / {label} T={threads}: fd={} adj={} rel={}",
                    case.name,
                    t.fd_value,
                    t.adjoint_value,
                    t.rel_error
                );
            }
        }
    }
}
