//! Invariants of the committed `BENCH_kernels.json` artifact.
//!
//! The benchmark harness regenerates this file; these tests pin the
//! contract every consumer (README tables, the AOT wall, CI trend
//! scripts) relies on: the bitwise gates are green and the `summary`
//! block is complete and internally consistent with the raw cells.

use formad_serve::Json;

fn artifact() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let text = std::fs::read_to_string(path).expect("BENCH_kernels.json is committed");
    Json::parse(&text).expect("BENCH_kernels.json parses")
}

fn get<'j>(j: &'j Json, key: &str) -> &'j Json {
    j.get(key).unwrap_or_else(|| panic!("missing `{key}`"))
}

fn str_of(j: &Json, key: &str) -> String {
    get(j, key)
        .as_str()
        .unwrap_or_else(|| panic!("`{key}` not a string"))
        .to_string()
}

fn num_of(j: &Json, key: &str) -> f64 {
    match get(j, key) {
        Json::Num(v) => *v,
        other => panic!("`{key}` not a number: {other}"),
    }
}

fn items(j: &Json) -> &[Json] {
    match j {
        Json::Arr(v) => v,
        other => panic!("expected array, got {other}"),
    }
}

#[test]
fn bitwise_gates_are_green() {
    let j = artifact();
    assert_eq!(get(&j, "all_bitwise").as_bool(), Some(true));
    assert_eq!(get(&j, "orderings_agree").as_bool(), Some(true));
    // Every kernel row repeats the per-kernel halves of the gate.
    for k in items(get(&j, "kernels")) {
        let name = str_of(k, "name");
        assert_eq!(
            get(k, "all_safe").as_bool(),
            Some(true),
            "kernel `{name}` not race-free"
        );
        assert_eq!(
            get(k, "native_matches_sim").as_bool(),
            Some(true),
            "kernel `{name}` native/sim mismatch"
        );
    }
}

#[test]
fn summary_block_is_complete_and_consistent() {
    let j = artifact();
    let summary = get(&j, "summary");
    let threads: Vec<f64> = items(get(&j, "threads"))
        .iter()
        .map(|t| match t {
            Json::Num(v) => *v,
            other => panic!("thread entry {other}"),
        })
        .collect();
    let backends: Vec<String> = items(get(&j, "backends"))
        .iter()
        .map(|b| b.as_str().expect("backend name").to_string())
        .collect();
    assert!(
        threads.contains(&num_of(summary, "check_threads")),
        "check_threads must be one of the measured thread counts"
    );

    // One summary row per raw kernel row, same names, same order.
    let raw_names: Vec<String> = items(get(&j, "kernels"))
        .iter()
        .map(|k| str_of(k, "name"))
        .collect();
    let sum_kernels = items(get(summary, "kernels"));
    let sum_names: Vec<String> = sum_kernels.iter().map(|k| str_of(k, "name")).collect();
    assert_eq!(sum_names, raw_names, "summary must cover every kernel");

    for k in sum_kernels {
        let name = str_of(k, "name");
        // `fastest` is the global winner, so it can only be at least as
        // fast as the winner among adjoints; both cells must point at a
        // measured (backend, threads) cell with a positive time.
        let fastest = get(k, "fastest");
        let adj = get(k, "fastest_adjoint");
        for (label, cell) in [("fastest", fastest), ("fastest_adjoint", adj)] {
            assert!(
                backends.contains(&str_of(cell, "backend")),
                "`{name}` {label}: unknown backend"
            );
            assert!(
                threads.contains(&num_of(cell, "threads")),
                "`{name}` {label}: unknown thread count"
            );
            assert!(
                num_of(cell, "best_s") > 0.0,
                "`{name}` {label}: non-positive time"
            );
        }
        assert!(
            str_of(adj, "version").starts_with("adj-"),
            "`{name}`: fastest_adjoint must be an adjoint version"
        );
        assert!(
            num_of(fastest, "best_s") <= num_of(adj, "best_s"),
            "`{name}`: global fastest slower than fastest adjoint"
        );
        // Dispatch-removal factors exist for all four versions and are
        // positive finite ratios.
        let aob = get(k, "aot_over_bytecode");
        for version in ["primal", "adj-FormAD", "adj-atomic", "adj-reduction"] {
            let r = num_of(aob, version);
            assert!(
                r.is_finite() && r > 0.0,
                "`{name}`: aot_over_bytecode[{version}] = {r}"
            );
        }
        let foa = get(k, "formad_over_atomic");
        for b in &backends {
            let r = num_of(foa, b);
            assert!(
                r.is_finite() && r > 0.0,
                "`{name}`: formad_over_atomic[{b}] = {r}"
            );
        }
    }
}
