//! Criterion wrappers around the figure experiments: one bench per table
//! and figure of the paper, at a reduced scale so `cargo bench` completes
//! in minutes (use the `repro` binary for full sweeps and CSV output).

use criterion::{criterion_group, criterion_main, Criterion};
use formad_bench::{gfmc_figure, green_gauss_figure, lbm_report, stencil_figure, table1};

fn figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_artifacts");
    group.sample_size(10);

    // Table 1: the full six-benchmark analysis sweep.
    group.bench_function("table1", |b| b.iter(table1));

    // §7.3 narrative (analysis-only benchmark).
    group.bench_function("lbm_report", |b| b.iter(lbm_report));

    // Figures 3/5 and 4/6: one simulated protocol run at tiny scale
    // (absolute + speedup series come from the same data).
    group.bench_function("fig3_fig5_small_stencil", |b| {
        b.iter(|| stencil_figure(1, 2_000, 1, &[1, 18]))
    });
    group.bench_function("fig4_fig6_large_stencil", |b| {
        b.iter(|| stencil_figure(8, 2_000, 1, &[1, 18]))
    });

    // Figures 7/8.
    group.bench_function("fig7_fig8_gfmc", |b| {
        b.iter(|| gfmc_figure(16, 1, &[1, 18]))
    });

    // Figures 9/10.
    group.bench_function("fig9_fig10_green_gauss", |b| {
        b.iter(|| green_gauss_figure(1_000, 1, &[1, 18]))
    });

    group.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
