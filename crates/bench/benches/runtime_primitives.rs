//! Real wall-clock costs of the three increment disciplines — the
//! hardware calibration behind the simulated machine's cost model.
//!
//! Expected ordering (matching the paper's single-thread observations):
//! plain ≪ reduction-with-merge < atomic-CAS-loop.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use formad_runtime::{AtomicF64Slice, ReductionBuffers};

const N: usize = 1 << 14;

fn bench_increments(c: &mut Criterion) {
    let mut group = c.benchmark_group("increment_discipline");
    let src: Vec<f64> = (0..N).map(|k| (k as f64 * 0.001).sin()).collect();

    group.bench_function(BenchmarkId::new("plain", N), |b| {
        let mut target = vec![0.0f64; N];
        b.iter(|| {
            for i in 0..N {
                target[i] += black_box(src[i]);
            }
            black_box(&target);
        });
    });

    group.bench_function(BenchmarkId::new("atomic_cas", N), |b| {
        let target = AtomicF64Slice::zeros(N);
        b.iter(|| {
            for (i, &v) in src.iter().enumerate() {
                target.add(i, black_box(v));
            }
            black_box(target.get(0));
        });
    });

    group.bench_function(BenchmarkId::new("reduction_privatize_merge", N), |b| {
        b.iter(|| {
            // One region's worth: allocate private copy, increment, merge.
            let red = ReductionBuffers::new(1, N);
            let buf = red.slice_mut(0);
            for i in 0..N {
                buf[i] += black_box(src[i]);
            }
            let mut target = vec![0.0f64; N];
            red.merge_into(&mut target);
            black_box(&target);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_increments);
criterion_main!(benches);
