//! Native stencil kernels on the host CPU: one real-hardware data point
//! per program version of Figures 3/4 (single-core host, so one thread —
//! the paper's 1-thread column, where atomics are already ~10–25× slower
//! and reductions ~2×).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use formad_kernels::NativeStencil;
use formad_runtime::AtomicF64Slice;

const N: usize = 1 << 15;

fn stencil(radius: usize) -> (NativeStencil, Vec<f64>, Vec<f64>) {
    let w: Vec<f64> = (0..2 * radius + 1).map(|k| 0.1 + 0.01 * k as f64).collect();
    let st = NativeStencil::new(radius, w);
    let uold: Vec<f64> = (0..N).map(|k| (k as f64 * 0.37).sin()).collect();
    let unewb: Vec<f64> = (0..N).map(|k| (k as f64 * 0.73).cos()).collect();
    (st, uold, unewb)
}

fn bench_stencil(c: &mut Criterion) {
    for radius in [1usize, 8] {
        let label = if radius == 1 { "small" } else { "large" };
        let mut group = c.benchmark_group(format!("native_stencil_{label}"));
        let (st, uold, unewb) = stencil(radius);

        group.bench_function(BenchmarkId::new("primal", N), |b| {
            let mut unew = vec![0.0f64; N];
            b.iter(|| {
                st.primal_sweep(1, black_box(&uold), &mut unew);
                black_box(&unew);
            });
        });

        group.bench_function(BenchmarkId::new("adjoint_plain_formad", N), |b| {
            let mut uoldb = vec![0.0f64; N];
            b.iter(|| {
                st.adjoint_sweep_plain(1, black_box(&unewb), &mut uoldb);
                black_box(&uoldb);
            });
        });

        group.bench_function(BenchmarkId::new("adjoint_atomic", N), |b| {
            let uoldb = AtomicF64Slice::zeros(N);
            b.iter(|| {
                st.adjoint_sweep_atomic(1, black_box(&unewb), &uoldb);
                black_box(uoldb.get(0));
            });
        });

        group.bench_function(BenchmarkId::new("adjoint_reduction", N), |b| {
            let mut uoldb = vec![0.0f64; N];
            b.iter(|| {
                st.adjoint_sweep_reduction(1, black_box(&unewb), &mut uoldb);
                black_box(&uoldb);
            });
        });

        group.finish();
    }
}

criterion_group!(benches, bench_stencil);
criterion_main!(benches);
