//! Wall-clock time of the full FormAD analysis per benchmark — the
//! paper's Table 1 `time` column measured on real hardware (the paper
//! reports 0.6–4.8 s through the Java/Z3 stack; our from-scratch prover
//! runs the same queries natively).

use criterion::{criterion_group, criterion_main, Criterion};
use formad::{Formad, FormadOptions};
use formad_kernels::{lbm, GfmcCase, GreenGaussCase, StencilCase};

fn analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("formad_analysis");
    group.sample_size(10);

    let st1 = StencilCase::small(64, 1).ir();
    group.bench_function("stencil_1", |b| {
        let tool = Formad::new(FormadOptions::new(
            StencilCase::independents(),
            StencilCase::dependents(),
        ));
        b.iter(|| tool.analyze(&st1).unwrap());
    });

    let st8 = StencilCase::large(128, 1).ir();
    group.bench_function("stencil_8", |b| {
        let tool = Formad::new(FormadOptions::new(
            StencilCase::independents(),
            StencilCase::dependents(),
        ));
        b.iter(|| tool.analyze(&st8).unwrap());
    });

    let gfmc = GfmcCase::new(16, 1);
    let split = gfmc.ir();
    let fused = gfmc.ir_star();
    let tool_g = Formad::new(FormadOptions::new(
        GfmcCase::independents(),
        GfmcCase::dependents(),
    ));
    group.bench_function("gfmc_split", |b| b.iter(|| tool_g.analyze(&split).unwrap()));
    group.bench_function("gfmc_star", |b| b.iter(|| tool_g.analyze(&fused).unwrap()));

    let lbm_ir = lbm::lbm_ir();
    group.bench_function("lbm", |b| {
        let tool = Formad::new(FormadOptions::new(lbm::independents(), lbm::dependents()));
        b.iter(|| tool.analyze(&lbm_ir).unwrap());
    });

    let gg = GreenGaussCase::linear(64, 1).ir();
    group.bench_function("green_gauss", |b| {
        let tool = Formad::new(FormadOptions::new(
            GreenGaussCase::independents(),
            GreenGaussCase::dependents(),
        ));
        b.iter(|| tool.analyze(&gg).unwrap());
    });

    group.finish();
}

criterion_group!(benches, analysis);
criterion_main!(benches);
