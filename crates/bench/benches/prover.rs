//! Microbenchmarks of the theorem-prover substrate: the query patterns
//! FormAD issues, from Figure-2-sized to LBM-sized models (the dominant
//! cost of the paper's Table 1 `time` column).

use criterion::{criterion_group, criterion_main, Criterion};
use formad_smt::{Formula, ProofCache, SatResult, Solver, Term};

fn fig2_query(c: &mut Criterion) {
    c.bench_function("prover/fig2_indirect_unsat", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let i = Term::sym("i");
            let ip = Term::sym("i'");
            let ci = Term::app("c", vec![i.clone()]);
            let cip = Term::app("c", vec![ip.clone()]);
            let f = Formula::term_ne(&i, &ip, &mut s.table).unwrap();
            s.assert(f);
            let f = Formula::term_ne(&ci, &cip, &mut s.table).unwrap();
            s.assert(f);
            let q = Formula::term_eq(&(ci + Term::int(7)), &(cip + Term::int(7)), &mut s.table)
                .unwrap();
            assert_eq!(s.check_with(q), SatResult::Unsat);
        });
    });
}

fn stride_parity_query(c: &mut Criterion) {
    c.bench_function("prover/stride2_parity_unsat", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let two = Term::int(2);
            let f = Formula::term_eq(
                &Term::sym("i"),
                &(Term::sym("lo") + two.clone() * Term::sym("k")),
                &mut s.table,
            )
            .unwrap();
            s.assert(f);
            let f = Formula::term_eq(
                &Term::sym("i'"),
                &(Term::sym("lo") + two * Term::sym("k'")),
                &mut s.table,
            )
            .unwrap();
            s.assert(f);
            let f = Formula::term_ne(&Term::sym("k"), &Term::sym("k'"), &mut s.table).unwrap();
            s.assert(f);
            let q = Formula::term_eq(
                &Term::sym("i'"),
                &(Term::sym("i") - Term::int(1)),
                &mut s.table,
            )
            .unwrap();
            assert_eq!(s.check_with(q), SatResult::Unsat);
        });
    });
}

/// An LBM-shaped model: ~19 write expressions, all pairwise disjointness
/// facts asserted, one query that must stay satisfiable (the negative
/// result).
fn lbm_scale_model(c: &mut Criterion) {
    let mults: Vec<i64> = vec![
        -1, -119, 0, -14280, -120, -14520, -14399, 14401, 14520, 14400, 121, -14400, -14401, 14399,
        -121, 1, 14280, 119, 120,
    ];
    c.bench_function("prover/lbm_scale_model_sat", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let f = Formula::term_ne(&Term::sym("i"), &Term::sym("i'"), &mut s.table).unwrap();
            s.assert(f);
            let nce = Term::sym("nce");
            let expr = |k: usize, primed: bool| -> Term {
                let suffix = if primed { "'" } else { "" };
                Term::sym(format!("o{k}{suffix}"))
                    + nce.clone() * Term::int(mults[k])
                    + Term::sym(format!("i{suffix}"))
            };
            for k in 0..mults.len() {
                for j in 0..mults.len() {
                    let f =
                        Formula::term_ne(&expr(k, true), &expr(j, false), &mut s.table).unwrap();
                    s.assert(f);
                }
            }
            // The anomalous read: o6 with multiplier 0.
            let q = Formula::term_eq(
                &(Term::sym("o6'") + Term::sym("i'")),
                &(Term::sym("o3") + Term::sym("i")),
                &mut s.table,
            )
            .unwrap();
            assert_eq!(s.check_with(q), SatResult::Sat);
        });
    });
}

/// The Figure-2 query answered from the canonical proof cache: the first
/// `check()` populates the entry, the measured loop replays the lookup
/// path (canonicalization + shard probe, no solver search). The gap
/// against `prover/fig2_indirect_unsat` is the per-hit saving.
fn fig2_cached_repeat(c: &mut Criterion) {
    let mut s = Solver::new();
    s.set_cache(Some(ProofCache::new()));
    let i = Term::sym("i");
    let ip = Term::sym("i'");
    let ci = Term::app("c", vec![i.clone()]);
    let cip = Term::app("c", vec![ip.clone()]);
    let f = Formula::term_ne(&i, &ip, &mut s.table).unwrap();
    s.assert(f);
    let f = Formula::term_ne(&ci, &cip, &mut s.table).unwrap();
    s.assert(f);
    let q = Formula::term_eq(&(ci + Term::int(7)), &(cip + Term::int(7)), &mut s.table).unwrap();
    s.push();
    s.assert(q);
    assert_eq!(s.check(), SatResult::Unsat); // warm the cache
    c.bench_function("prover/fig2_cached_repeat", |b| {
        b.iter(|| assert_eq!(s.check(), SatResult::Unsat));
    });
    s.pop();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = fig2_query, stride_parity_query, lbm_scale_model, fig2_cached_repeat
}
criterion_main!(benches);
