//! Green-Gauss gradients on an unstructured mesh (paper §7.4): a colored
//! edge loop with data-dependent node indices and an `if` guard. FormAD
//! proves the adjoint of `dv` safe using knowledge extracted from the
//! `grad` increments — the cross-array knowledge transfer at the heart of
//! the paper — and the four adjoint program versions are compared on the
//! simulated machine.
//!
//! ```sh
//! cargo run --release --example green_gauss_gradients
//! ```

use formad::{Formad, FormadOptions, IncMode, ParallelTreatment};
use formad_bench::adjoint_bindings;
use formad_kernels::GreenGaussCase;
use formad_machine::{run, Machine};

fn main() {
    let case = GreenGaussCase::linear(5_000, 1);
    let primal = case.ir();
    println!(
        "mesh: {} nodes, {} edges, {} colors",
        case.mesh.nodes,
        case.mesh.num_edges(),
        case.mesh.num_colors()
    );
    assert!(case.mesh.verify(), "coloring invariant");

    let tool = Formad::new(FormadOptions::new(
        GreenGaussCase::independents(),
        GreenGaussCase::dependents(),
    ));
    let result = tool.differentiate(&primal).expect("differentiate");
    print!("{}", formad::full_report(&primal.name, &result.analysis));
    assert!(result.analysis.all_safe());

    // Compare the adjoint versions on the simulated 18-thread machine.
    let base = case.bindings(42);
    let adj_base = adjoint_bindings(
        &primal,
        &base,
        GreenGaussCase::independents(),
        GreenGaussCase::dependents(),
    );
    let atomic = tool
        .adjoint_with(&primal, ParallelTreatment::Uniform(IncMode::Atomic))
        .unwrap();
    let reduction = tool
        .adjoint_with(&primal, ParallelTreatment::Uniform(IncMode::Reduction))
        .unwrap();
    let serial = tool
        .adjoint_with(&primal, ParallelTreatment::Serial)
        .unwrap();

    println!("\nsimulated adjoint cost (giga-cycles), 18 threads:");
    let m18 = Machine::with_threads(18);
    let m1 = Machine::serial();
    let cost = |prog, m: &Machine| {
        let mut b = adj_base.clone();
        run(prog, &mut b, m).expect("run").wall_cycles as f64 / 1e9
    };
    let serial_c = cost(&serial, &m1);
    println!("  serial    : {serial_c:.4}");
    for (name, prog) in [
        ("FormAD", &result.adjoint),
        ("atomic", &atomic),
        ("reduction", &reduction),
    ] {
        let c = cost(prog, &m18);
        println!(
            "  {name:<10}: {c:.4}  (speedup vs serial: {:.2}x)",
            serial_c / c
        );
    }

    // And gradient values are identical regardless of version.
    let mut b_formad = adj_base.clone();
    run(&result.adjoint, &mut b_formad, &m18).unwrap();
    let mut b_atomic = adj_base.clone();
    run(&atomic, &mut b_atomic, &m18).unwrap();
    assert_eq!(
        b_formad.get_real_array("dvb"),
        b_atomic.get_real_array("dvb")
    );
    println!("\nadjoint values identical across versions ✓");
}
