//! Adjoint sensitivity of a 2-D heat equation — and why the paper's §7.1
//! uses the "compact" stencil scheme.
//!
//! A *conventional* 5-point stencil reads neighbours it does not write:
//! its adjoint scatters increments to `ub(i, j±1)`, which genuinely
//! collide across parallel iterations. FormAD correctly refuses to remove
//! the safeguards — the generated adjoint carries atomics and still
//! computes the exact gradient (verified against finite differences
//! below). The compact scheme (see `formad_kernels::StencilCase` and the
//! `stencil_scaling` example) restructures the loop so read and write
//! sets coincide, which is what lets FormAD prove the adjoint guard-free.
//!
//! ```sh
//! cargo run --release --example heat_sensitivity
//! ```

use formad::{Decision, Formad, FormadOptions};
use formad_ir::parse_program;
use formad_machine::{dot_product_test, run, Bindings, Machine};

const HEAT: &str = r#"
subroutine heat(nx, ny, nsteps, alpha, u, unext)
  integer, intent(in) :: nx, ny, nsteps
  real, intent(in) :: alpha
  real, intent(inout) :: u(nx, ny)
  real, intent(inout) :: unext(nx, ny)
  integer :: step, i, j
  do step = 1, nsteps
    !$omp parallel do shared(u, unext) private(i)
    do j = 2, ny - 1
      do i = 2, nx - 1
        unext(i, j) = u(i, j) + alpha * (u(i - 1, j) + u(i + 1, j) + u(i, j - 1) + u(i, j + 1) - 4.0 * u(i, j))
      end do
    end do
    !$omp parallel do shared(u, unext) private(i)
    do j = 2, ny - 1
      do i = 2, nx - 1
        u(i, j) = unext(i, j)
      end do
    end do
  end do
end subroutine
"#;

fn main() {
    let (nx, ny, nsteps) = (24usize, 16usize, 4usize);
    let primal = parse_program(HEAT).expect("parse");

    let tool = Formad::new(FormadOptions::new(&["u"], &["u"]));
    let result = tool.differentiate(&primal).expect("differentiate");
    print!("{}", formad::full_report(&primal.name, &result.analysis));

    // The diffusion loop reads u at (i, j−1) and (i, j+1): iterations j
    // and j+2 both increment ub(i, j+1) in the adjoint — a *real*
    // conflict, correctly detected. (This is the paper's motivation for
    // the compact scheme of §7.1, whose read set equals its write set.)
    let diffusion = &result.analysis.regions[0];
    assert!(
        matches!(diffusion.decisions.get("u"), Some(Decision::Guarded(_))),
        "conventional stencil adjoint must be guarded"
    );
    // The copy loop's accesses are affine and conflict-free.
    let copy = &result.analysis.regions[1];
    assert!(copy
        .decisions
        .values()
        .all(|d| matches!(d, Decision::Shared)));

    let text = formad_ir::program_to_string(&result.adjoint);
    let n_atomics = text.matches("!$omp atomic").count();
    println!("generated adjoint guards {n_atomics} increment site(s) with atomics\n");
    assert!(n_atomics > 0);

    // Initial condition: a hot spot.
    let mut u0 = vec![0.0f64; nx * ny];
    for j in 4..8 {
        for i in 4..10 {
            u0[(j - 1) * nx + (i - 1)] = 1.0;
        }
    }
    let base = Bindings::new()
        .int("nx", nx as i64)
        .int("ny", ny as i64)
        .int("nsteps", nsteps as i64)
        .real("alpha", 0.15)
        .real_array("u", u0.clone())
        .real_array("unext", vec![0.0; nx * ny]);

    let m = Machine::with_threads(8);
    let mut b = base.clone();
    run(&primal, &mut b, &m).expect("primal run");
    let total: f64 = b.get_real_array("u").unwrap().iter().sum();
    println!("heat after {nsteps} steps: Σu = {total:.6}");

    // Gradient of J = Σ_center u_final w.r.t. the initial condition.
    let mut seed = vec![0.0f64; nx * ny];
    for j in ny / 2 - 2..ny / 2 + 2 {
        for i in nx / 2 - 3..nx / 2 + 3 {
            seed[j * nx + i] = 1.0;
        }
    }
    let mut ba = base.clone();
    ba.real_arrays.insert("ub".into(), seed.clone());
    ba.real_arrays.insert("unextb".into(), vec![0.0; nx * ny]);
    run(&result.adjoint, &mut ba, &m).expect("adjoint run");
    let grad = ba.get_real_array("ub").unwrap();
    let gnorm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
    println!(
        "|dJ/du0| = {gnorm:.6} ({} nonzero sensitivities)",
        grad.iter().filter(|g| g.abs() > 1e-12).count()
    );
    assert!(gnorm > 0.0);

    // The atomically-guarded adjoint is still exact.
    let v: Vec<f64> = (0..nx * ny).map(|k| ((k as f64) * 0.61).sin()).collect();
    let t = dot_product_test(
        &primal,
        &result.adjoint,
        &base,
        &[("u", v)],
        &[("u", seed)],
        &m,
        1e-6,
        "b",
    )
    .expect("dot test");
    println!(
        "dot-product test: fd = {:.10}, adjoint = {:.10}, rel = {:.2e}",
        t.fd_value, t.adjoint_value, t.rel_error
    );
    assert!(t.passes(1e-7));
    println!("gradient of the heat solve verified ✓");
    println!(
        "\nto see FormAD *remove* the guards, restructure the stencil with the\n\
         compact scheme — run the `stencil_scaling` example."
    );
}
