//! Quickstart: differentiate a parallel loop with indirect memory access
//! (Figure 2 of the paper) and watch FormAD prove the adjoint race-free.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use formad::{Formad, FormadOptions};
use formad_ir::{parse_program, program_to_string};
use formad_machine::{dot_product_test, Bindings, Machine};

fn main() {
    // The paper's Figure 2: a gather/scatter loop whose write indices are
    // data-dependent. A classical parallelizer cannot prove the adjoint
    // race-free; FormAD can, because the *primal's* parallelization
    // already asserts that c(i) is one-to-one across iterations.
    let src = r#"
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n + 7)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#;
    let primal = parse_program(src).expect("parse");
    println!("=== primal ===\n{}", program_to_string(&primal));

    // Differentiate y with respect to x.
    let tool = Formad::new(FormadOptions::new(&["x"], &["y"]));
    let result = tool.differentiate(&primal).expect("differentiate");

    println!("=== FormAD analysis ===");
    print!("{}", formad::full_report(&primal.name, &result.analysis));
    assert!(result.analysis.all_safe());

    println!("\n=== generated adjoint (no atomics!) ===");
    println!("{}", program_to_string(&result.adjoint));

    // Validate against finite differences on the simulated machine.
    let n = 10usize;
    let c: Vec<i64> = (1..=n as i64).rev().collect(); // a permutation
    let base = Bindings::new()
        .int("n", n as i64)
        .int_array("c", c)
        .real_array("x", (0..n + 7).map(|k| (k as f64 * 0.31).sin()).collect())
        .real_array("y", vec![0.0; n]);
    let v: Vec<f64> = (0..n + 7).map(|k| (k as f64 * 0.17).cos()).collect();
    let w: Vec<f64> = (0..n).map(|k| 1.0 + k as f64 * 0.1).collect();
    let t = dot_product_test(
        &primal,
        &result.adjoint,
        &base,
        &[("x", v)],
        &[("y", w)],
        &Machine::with_threads(4),
        1e-6,
        "b",
    )
    .expect("execution");
    println!(
        "dot-product test: fd = {:.12}, adjoint = {:.12}, rel. error = {:.2e}",
        t.fd_value, t.adjoint_value, t.rel_error
    );
    assert!(t.passes(1e-8));
    println!("adjoint verified against finite differences ✓");
}
