//! Compact-stencil scaling study (paper §7.1, Figures 3 and 5): generate
//! all five program versions of a stride-2 compact stencil and sweep the
//! simulated thread counts, printing the same series the paper plots.
//!
//! ```sh
//! cargo run --release --example stencil_scaling
//! ```

use formad_bench::{stencil_figure, PAPER_THREADS};

fn main() {
    let fig = stencil_figure(1, 20_000, 2, &PAPER_THREADS);
    println!("benchmark: {}", fig.name);
    println!(
        "serial baselines (giga-cycles): primal {:.4}, adjoint {:.4}\n",
        fig.primal_serial, fig.adjoint_serial
    );
    println!("absolute simulated time (giga-cycles):");
    print!("{}", fig.absolute_csv());
    println!("\nparallel speedup vs the serial versions:");
    print!("{}", fig.speedup_csv());

    // The paper's headline observations, asserted:
    let formad_18 = fig.speedup("adj-FormAD", 18);
    let atomic_1 = fig.speedup("adj-atomic", 1);
    let atomic_18 = fig.speedup("adj-atomic", 18);
    let reduction_best = PAPER_THREADS
        .iter()
        .map(|t| fig.speedup("adj-reduction", *t))
        .fold(f64::MIN, f64::max);
    println!("\nFormAD adjoint speedup on 18 threads : {formad_18:.1}x");
    println!("atomic adjoint, 1 thread             : {atomic_1:.3}x (overhead even serially)");
    println!("atomic adjoint, 18 threads           : {atomic_18:.3}x (slows down with threads)");
    println!("best reduction adjoint speedup       : {reduction_best:.2}x (never beats serial)");
    assert!(formad_18 > 10.0);
    assert!(atomic_1 < 0.1);
    assert!(atomic_18 < atomic_1);
    assert!(reduction_best < 1.0);
}
