//! GFMC spin exchange (paper §7.2): why loop fission matters for AD.
//!
//! The fused kernel (GFMC*) contains one gather the analysis cannot
//! relate to the write set, so *every* adjoint increment to `cr` must be
//! guarded. Splitting the computation into two parallel loops (GFMC)
//! gives FormAD enough structure to prove the whole adjoint race-free.
//!
//! ```sh
//! cargo run --release --example gfmc_spin_exchange
//! ```

use formad::{Decision, Formad, FormadOptions};
use formad_ir::program_to_string;
use formad_kernels::GfmcCase;

fn main() {
    let case = GfmcCase::new(32, 1);
    let tool = Formad::new(FormadOptions::new(
        GfmcCase::independents(),
        GfmcCase::dependents(),
    ));

    println!("==== fused kernel (GFMC*) ====");
    let fused = case.ir_star();
    let a = tool.analyze(&fused).expect("analyze");
    print!("{}", formad::full_report(&fused.name, &a));
    let guarded = matches!(a.regions[0].decisions.get("cr"), Some(Decision::Guarded(_)));
    assert!(guarded, "fused version must be rejected");
    let adj = tool.differentiate(&fused).expect("differentiate").adjoint;
    let atomics = program_to_string(&adj).matches("!$omp atomic").count();
    println!("=> generated adjoint contains {atomics} atomic update(s)\n");

    println!("==== split kernel (GFMC) ====");
    let split = case.ir();
    let a = tool.analyze(&split).expect("analyze");
    print!("{}", formad::full_report(&split.name, &a));
    assert!(a.all_safe(), "split version must be proven safe");
    let adj = tool.differentiate(&split).expect("differentiate").adjoint;
    let atomics = program_to_string(&adj).matches("!$omp atomic").count();
    println!("=> generated adjoint contains {atomics} atomic update(s)");
    assert_eq!(atomics, 0);

    println!("\nsplitting the loop turned a fully-guarded adjoint into a");
    println!("guard-free one — the transformation the paper's Figures 7/8");
    println!("quantify at 5.9x runtime difference on 18 cores.");
}
