//! # formad-repro
//!
//! Umbrella crate of the FormAD reproduction — re-exports every workspace
//! crate so the examples and integration tests read naturally. See
//! `README.md` for the tour and `DESIGN.md` for the architecture.

pub use formad;
pub use formad_ad;
pub use formad_analysis;
pub use formad_bench;
pub use formad_ir;
pub use formad_kernels;
pub use formad_machine;
pub use formad_runtime;
pub use formad_smt;
