//! Shape assertions for every figure of the paper (§7), at reduced scale:
//! who wins, by roughly what factor, and in which direction the curves
//! bend. Absolute numbers are simulated cycles; the *relations* are what
//! the paper's evaluation establishes.

use formad_bench::{gfmc_figure, green_gauss_figure, stencil_figure, FigureData};

const THREADS: [usize; 4] = [1, 4, 8, 18];

fn assert_common_shape(fig: &FigureData) {
    // FormAD adjoint scales: monotone speedup growth, and at 18 threads it
    // beats every guarded version by a wide margin.
    let formad_1 = fig.speedup("adj-FormAD", 1);
    let formad_18 = fig.speedup("adj-FormAD", 18);
    assert!(
        formad_18 > 2.0 * formad_1,
        "{}: FormAD should scale ({formad_1:.2} → {formad_18:.2})",
        fig.name
    );
    // FormAD ≈ serial at one thread (no overhead versus the serial adjoint).
    assert!(
        formad_1 > 0.8 && formad_1 < 1.3,
        "{}: FormAD @1T should match serial ({formad_1:.2})",
        fig.name
    );
    // Atomics are far below serial even at one thread and get *worse*
    // with more threads (paper: "actually slow down as more threads are
    // added").
    let atomic_1 = fig.speedup("adj-atomic", 1);
    let atomic_18 = fig.speedup("adj-atomic", 18);
    assert!(atomic_1 < 0.25, "{}: atomic @1T {atomic_1:.3}", fig.name);
    assert!(
        atomic_18 < atomic_1,
        "{}: atomics must degrade with threads ({atomic_1:.3} → {atomic_18:.3})",
        fig.name
    );
    // Reductions beat atomics but never the FormAD adjoint; in parallel
    // the gap opens beyond 3×.
    for &t in &THREADS {
        let red = fig.speedup("adj-reduction", t);
        let atomic = fig.speedup("adj-atomic", t);
        let formad = fig.speedup("adj-FormAD", t);
        assert!(red > atomic, "{}: reduction > atomic at {t}T", fig.name);
        assert!(formad > red, "{}: FormAD > reduction at {t}T", fig.name);
        if t >= 4 {
            assert!(
                formad > 3.0 * red,
                "{}: FormAD ≫ reduction at {t}T",
                fig.name
            );
        }
    }
    // Headline: FormAD outperforms atomics and reductions by >5×
    // in parallel (paper: "factors ranging from 5× to over 13×").
    let red_best = THREADS
        .iter()
        .map(|t| fig.speedup("adj-reduction", *t))
        .fold(f64::MIN, f64::max);
    assert!(
        formad_18 / red_best > 5.0,
        "{}: FormAD vs best reduction = {:.1}x",
        fig.name,
        formad_18 / red_best
    );
}

#[test]
fn small_stencil_shape_fig3_fig5() {
    let fig = stencil_figure(1, 6_000, 1, &THREADS);
    assert_common_shape(&fig);
    // Paper: primal 13.4×, FormAD 13.6× on 18 threads; at our scale both
    // should exceed 8× and track each other within 40%.
    let p18 = fig.speedup("primal", 18);
    let f18 = fig.speedup("adj-FormAD", 18);
    assert!(p18 > 8.0, "primal @18T = {p18:.1}");
    assert!(f18 > 8.0, "FormAD @18T = {f18:.1}");
    assert!((p18 / f18 - 1.0).abs() < 0.4);
    // Reduction at one thread ≈ 0.43× (paper: 1.58 s / 3.65 s).
    let r1 = fig.speedup("adj-reduction", 1);
    assert!(r1 > 0.2 && r1 < 0.7, "reduction @1T = {r1:.2}");
}

#[test]
fn large_stencil_shape_fig4_fig6() {
    let fig = stencil_figure(8, 6_000, 1, &THREADS);
    assert_common_shape(&fig);
    let p18 = fig.speedup("primal", 18);
    assert!(p18 > 8.0, "primal @18T = {p18:.1}");
}

#[test]
fn gfmc_shape_fig7_fig8() {
    let fig = gfmc_figure(48, 1, &THREADS);
    assert_common_shape(&fig);
    // Load imbalance (ramped inner trip counts) caps scaling below the
    // stencils' (paper: 7.35×/8.39× vs 13.4×/13.6×).
    let p18 = fig.speedup("primal", 18);
    assert!(p18 > 4.0 && p18 < 14.0, "primal @18T = {p18:.1}");
    // FormAD adjoint beats the best reduction version by >5× (paper:
    // 5.88× between FormAD@18T and reduction@4T).
    let f18 = fig.speedup("adj-FormAD", 18);
    let red_best = THREADS
        .iter()
        .map(|t| fig.speedup("adj-reduction", *t))
        .fold(f64::MIN, f64::max);
    assert!(f18 / red_best > 5.0, "{:.2} / {:.2}", f18, red_best);
}

#[test]
fn green_gauss_shape_fig9_fig10() {
    let fig = green_gauss_figure(6_000, 1, &THREADS);
    // Memory-bound: the primal's speedup saturates well below ideal
    // (paper: "highly memory bound ... overall poor scalability").
    let p18 = fig.speedup("primal", 18);
    let p1 = fig.speedup("primal", 1);
    assert!(p18 < 8.0, "primal @18T should saturate, got {p18:.1}");
    assert!(p18 > 1.5 * p1, "still some speedup");
    // FormAD achieves parallel speedup while atomics/reductions never
    // reach serial performance.
    let f18 = fig.speedup("adj-FormAD", 18);
    assert!(f18 > 2.0, "FormAD @18T = {f18:.1}");
    for &t in &THREADS {
        assert!(fig.speedup("adj-atomic", t) < 1.0);
        assert!(fig.speedup("adj-reduction", t) < 1.0);
    }
}
