//! Property-based tests over the core substrates:
//!
//! - prover soundness against brute-force model enumeration;
//! - linear-normalization algebra;
//! - parser ⇄ printer round-trips on generated programs;
//! - adjoint correctness (dot-product test) on randomized parallel
//!   gather/scatter kernels across thread counts.
//!
//! Program/index/data inputs are drawn from `formad_fuzz::strategies` —
//! the same grammar the differential fuzzer uses — rather than
//! hand-rolled generators.

use formad_ad::{differentiate, AdjointOptions, IncMode, ParallelTreatment};
use formad_fuzz::strategies::{index_expr_src, permutation, program, real_vec};
use formad_fuzz::GenConfig;
use formad_ir::{parse_program, program_to_string, validate};
use formad_machine::{dot_product_test, Bindings, Machine};
use formad_smt::{brute, Formula, SatResult, Solver, Term};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Prover vs brute force.
// ---------------------------------------------------------------------

/// A random literal over a small symbol pool.
#[derive(Debug, Clone)]
enum RandLit {
    Eq(usize, usize, i64),
    Ne(usize, usize, i64),
    Le(usize, usize, i64),
}

fn rand_lit() -> impl Strategy<Value = RandLit> {
    (0usize..4, 0usize..4, -3i64..=3, 0u8..3).prop_map(|(a, b, c, k)| match k {
        0 => RandLit::Eq(a, b, c),
        1 => RandLit::Ne(a, b, c),
        _ => RandLit::Le(a, b, c),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whenever the solver says UNSAT, brute force over a domain box must
    /// find no model; whenever brute force finds a model, the solver must
    /// not claim UNSAT.
    #[test]
    fn solver_unsat_is_sound(lits in prop::collection::vec(rand_lit(), 1..7)) {
        let names = ["a", "b", "c", "d"];
        let mut s = Solver::new();
        let mut formulas = Vec::new();
        for l in &lits {
            let (a, b, c, kind) = match l {
                RandLit::Eq(a, b, c) => (*a, *b, *c, 0),
                RandLit::Ne(a, b, c) => (*a, *b, *c, 1),
                RandLit::Le(a, b, c) => (*a, *b, *c, 2),
            };
            let lhs = Term::sym(names[a]);
            let rhs = Term::sym(names[b]) + Term::int(c);
            let f = match kind {
                0 => Formula::term_eq(&lhs, &rhs, &mut s.table).unwrap(),
                1 => Formula::term_ne(&lhs, &rhs, &mut s.table).unwrap(),
                _ => {
                    // lhs ≤ rhs as a literal.
                    let a = formad_smt::normalize(&lhs, &mut s.table).unwrap();
                    let b = formad_smt::normalize(&rhs, &mut s.table).unwrap();
                    Formula::Lit(formad_smt::Literal::le(a, b))
                }
            };
            s.assert(f.clone());
            formulas.push(f);
        }
        let verdict = s.check();
        // Domain box chosen wide enough that any satisfiable difference
        // system over constants |c| ≤ 3 with ≤ 6 literals has a model in
        // it (constants sum to ≤ 18).
        let brute_model = brute::find_model(&formulas, &s.table, -21, 21).unwrap();
        match verdict {
            SatResult::Unsat => prop_assert!(brute_model.is_none(),
                "solver UNSAT but model {brute_model:?} exists"),
            SatResult::Sat => prop_assert!(brute_model.is_some(),
                "solver SAT but brute force found nothing in the box"),
            SatResult::Unknown(_) => {}
        }
    }

    /// Linear normalization: (x + y) − y ≡ x for arbitrary small terms.
    #[test]
    fn normalization_cancels(coef in -5i64..=5, c in -10i64..=10) {
        let mut table = formad_smt::AtomTable::new();
        let x = Term::int(coef) * Term::sym("x") + Term::int(c);
        let y = Term::app("f", vec![Term::sym("y")]);
        let sum = x.clone() + y.clone() - y;
        let n1 = formad_smt::normalize(&sum, &mut table).unwrap();
        let n2 = formad_smt::normalize(&x, &mut table).unwrap();
        prop_assert_eq!(n1, n2);
    }
}

// ---------------------------------------------------------------------
// Parser ⇄ printer round-trip on generated programs.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print(parse(src)) re-parses to a structurally identical program,
    /// for every index-expression shape the fuzzer grammar produces
    /// (affine, strided, reversed, folded, indirect).
    #[test]
    fn parse_print_roundtrip(e1 in index_expr_src(), e2 in index_expr_src()) {
        let src = format!(
            "subroutine t(n, u, v, c)\n  integer, intent(in) :: n\n  \
             real, intent(in) :: v(3 * n + 20)\n  real, intent(inout) :: u(3 * n + 20)\n  \
             integer, intent(in) :: c(n)\n  \
             integer :: i\n  !$omp parallel do shared(u, v, c)\n  do i = 1, n\n    \
             u(i) = u(i) + v({e1}) * v({e2})\n  end do\nend subroutine\n"
        );
        let p1 = parse_program(&src).expect("grammar index exprs always parse");
        let printed = program_to_string(&p1);
        let p2 = parse_program(&printed).expect("printed program must re-parse");
        prop_assert_eq!(p1, p2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whole generated programs validate, and their printed form is a
    /// fixpoint of print ∘ parse. The comparison is on the printed
    /// string, not the AST: parsing normalizes some spellings (e.g.
    /// folding a negated literal), and the printed form is the one the
    /// fuzzer's round-trip oracle locks down.
    #[test]
    fn generated_program_print_fixpoint(p in program(GenConfig::default())) {
        prop_assert!(validate(&p).is_empty());
        let s1 = program_to_string(&p);
        let p2 = parse_program(&s1).expect("printed generated program re-parses");
        prop_assert_eq!(program_to_string(&p2), s1);
    }
}

// ---------------------------------------------------------------------
// Adjoint correctness on randomized gather/scatter kernels.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For a random permutation gather, a random coefficient, and random
    /// data, all adjoint versions agree with finite differences at all
    /// thread counts. The permutation and the data vectors come from the
    /// fuzz-crate strategies (vectors are drawn at the maximum extent
    /// and truncated to the offset-dependent length).
    #[test]
    fn randomized_gather_adjoints(
        c in permutation(12),
        offset in 0i64..5,
        threads in 1usize..9,
        x0 in real_vec(16),
        y0 in real_vec(12),
        xd in real_vec(16),
        yd in real_vec(12),
    ) {
        let n = 12usize;
        let xlen = n + offset as usize;
        let src = format!(
            "subroutine g(n, x, y, c)\n  integer, intent(in) :: n\n  \
             real, intent(in) :: x(n + {off})\n  real, intent(inout) :: y(n)\n  \
             integer, intent(in) :: c(n)\n  integer :: i\n  \
             !$omp parallel do shared(x, y, c)\n  do i = 1, n\n    \
             y(c(i)) = y(c(i)) + 2.0 * x(c(i) + {off})\n  end do\nend subroutine\n",
            off = offset
        );
        let primal = parse_program(&src).unwrap();

        let base = Bindings::new()
            .int("n", n as i64)
            .int_array("c", c)
            .real_array("x", x0[..xlen].to_vec())
            .real_array("y", y0.clone());
        for tr in [
            ParallelTreatment::Uniform(IncMode::Plain),
            ParallelTreatment::Uniform(IncMode::Atomic),
            ParallelTreatment::Uniform(IncMode::Reduction),
        ] {
            let adj = differentiate(&primal, &AdjointOptions::new(&["x"], &["y"], tr)).unwrap();
            let t = dot_product_test(
                &primal,
                &adj,
                &base,
                &[("x", xd[..xlen].to_vec())],
                &[("y", yd.clone())],
                &Machine::with_threads(threads),
                1e-6,
                "b",
            ).unwrap();
            prop_assert!(t.passes(1e-7), "rel error {}", t.rel_error);
        }
    }
}
