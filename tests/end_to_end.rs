//! End-to-end workspace tests: the whole toolchain from source text to
//! verified gradient, plus cross-version value equivalence and the
//! validity of generated code as surface syntax.

use formad::{Formad, FormadOptions, IncMode, ParallelTreatment};
use formad_ir::{parse_program, program_to_string, validate};
use formad_kernels::{GfmcCase, GreenGaussCase, StencilCase};
use formad_machine::{run, Bindings, Machine};

/// Generated adjoints are themselves valid programs of the language:
/// they re-parse, validate, and the reparse is structurally identical.
#[test]
fn generated_adjoints_are_valid_source() {
    let cases: Vec<(formad_ir::Program, Vec<&str>, Vec<&str>)> = vec![
        (StencilCase::small(32, 1).ir(), vec!["uold"], vec!["unew"]),
        (StencilCase::large(64, 1).ir(), vec!["uold"], vec!["unew"]),
        (GfmcCase::new(8, 1).ir(), vec!["cr", "cl"], vec!["cr", "cl"]),
        (
            GfmcCase::new(8, 1).ir_star(),
            vec!["cr", "cl"],
            vec!["cr", "cl"],
        ),
        (GreenGaussCase::linear(16, 1).ir(), vec!["dv"], vec!["grad"]),
        (formad_kernels::lbm_ir(), vec!["srcgrid"], vec!["dstgrid"]),
    ];
    for (primal, indep, dep) in cases {
        let tool = Formad::new(FormadOptions::new(&indep, &dep));
        for treatment in [
            None, // FormAD plan
            Some(ParallelTreatment::Serial),
            Some(ParallelTreatment::Uniform(IncMode::Atomic)),
            Some(ParallelTreatment::Uniform(IncMode::Reduction)),
        ] {
            let adj = match treatment {
                None => tool.differentiate(&primal).unwrap().adjoint,
                Some(t) => tool.adjoint_with(&primal, t).unwrap(),
            };
            let printed = program_to_string(&adj);
            let reparsed = parse_program(&printed)
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{printed}", primal.name));
            assert_eq!(reparsed, adj, "{}", primal.name);
            let errs = validate(&adj);
            assert!(errs.is_empty(), "{}: {errs:?}\n{printed}", primal.name);
        }
    }
}

/// The four adjoint versions compute bitwise-identical gradients on the
/// deterministic simulated machine.
#[test]
fn adjoint_values_identical_across_versions() {
    let case = GreenGaussCase::linear(40, 2);
    let primal = case.ir();
    let tool = Formad::new(FormadOptions::new(
        GreenGaussCase::independents(),
        GreenGaussCase::dependents(),
    ));
    let formad_adj = tool.differentiate(&primal).unwrap().adjoint;
    let versions = [
        tool.adjoint_with(&primal, ParallelTreatment::Serial)
            .unwrap(),
        formad_adj,
        tool.adjoint_with(&primal, ParallelTreatment::Uniform(IncMode::Atomic))
            .unwrap(),
        tool.adjoint_with(&primal, ParallelTreatment::Uniform(IncMode::Reduction))
            .unwrap(),
    ];
    let base = case.bindings(77);
    let mut results: Vec<Vec<f64>> = Vec::new();
    for adj in &versions {
        let mut b = base.clone();
        let nn = case.mesh.nodes;
        b.real_arrays.insert("gradb".into(), vec![1.0; nn]);
        b.real_arrays.insert("dvb".into(), vec![0.0; nn]);
        run(adj, &mut b, &Machine::with_threads(6)).unwrap();
        results.push(b.get_real_array("dvb").unwrap().to_vec());
    }
    for r in &results[1..] {
        assert_eq!(&results[0], r);
    }
}

/// The primal value is reproduced by the adjoint program's forward sweep:
/// running the adjoint leaves the dependent outputs exactly as the primal
/// does.
#[test]
fn adjoint_forward_sweep_reproduces_primal() {
    let case = StencilCase::small(48, 2);
    let primal = case.ir();
    let tool = Formad::new(FormadOptions::new(
        StencilCase::independents(),
        StencilCase::dependents(),
    ));
    let adj = tool.differentiate(&primal).unwrap().adjoint;

    let mut b_primal = case.bindings(5);
    run(&primal, &mut b_primal, &Machine::with_threads(3)).unwrap();

    let mut b_adj = case.bindings(5);
    b_adj.real_arrays.insert("unewb".into(), vec![1.0; case.n]);
    b_adj.real_arrays.insert("uoldb".into(), vec![0.0; case.n]);
    run(&adj, &mut b_adj, &Machine::with_threads(3)).unwrap();

    assert_eq!(
        b_primal.get_real_array("unew"),
        b_adj.get_real_array("unew")
    );
}

/// Linearity check for the stencil: the gradient of Σ unew w.r.t. uold is
/// independent of the input values (constant Jacobian), and each column
/// sums the stencil weights that touch it.
#[test]
fn stencil_gradient_is_input_independent() {
    let case = StencilCase::small(40, 1);
    let primal = case.ir();
    let tool = Formad::new(FormadOptions::new(
        StencilCase::independents(),
        StencilCase::dependents(),
    ));
    let adj = tool.differentiate(&primal).unwrap().adjoint;

    let grad_for = |seed: u64| -> Vec<f64> {
        let mut b = case.bindings(seed);
        b.real_arrays.insert("unewb".into(), vec![1.0; case.n]);
        b.real_arrays.insert("uoldb".into(), vec![0.0; case.n]);
        run(&adj, &mut b, &Machine::serial()).unwrap();
        b.get_real_array("uoldb").unwrap().to_vec()
    };
    // Different random uold/unew inputs, same weights (bindings use the
    // seed for both w and data, so fix w by patching).
    let b1 = case.bindings(1);
    let mut b2 = case.bindings(2);
    let w = b1.get_real_array("w").unwrap().to_vec();
    b2.real_arrays.insert("w".into(), w);
    let mk = |mut b: Bindings| -> Vec<f64> {
        b.real_arrays.insert("unewb".into(), vec![1.0; case.n]);
        b.real_arrays.insert("uoldb".into(), vec![0.0; case.n]);
        run(&adj, &mut b, &Machine::serial()).unwrap();
        b.get_real_array("uoldb").unwrap().to_vec()
    };
    let g1 = mk(b1);
    let g2 = mk(b2);
    for (a, b) in g1.iter().zip(&g2) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
    let _ = grad_for;
}

/// Analysis report rendering is stable and contains the Table-1 columns.
#[test]
fn report_rendering() {
    let case = StencilCase::small(32, 1);
    let tool = Formad::new(FormadOptions::new(
        StencilCase::independents(),
        StencilCase::dependents(),
    ));
    let a = tool.analyze(&case.ir()).unwrap();
    let header = formad::table1_header();
    let row = formad::table1_row("stencil 1", &a);
    assert!(header.contains("queries"));
    assert!(row.starts_with("stencil 1"));
    let full = formad::full_report("stencil1", &a);
    assert!(full.contains("adjoint of `uold`: shared"));
    assert!(full.contains("known-safe write expressions"));
}

/// The LBM §7.3 narrative lists all 19 safe write expressions and at
/// least one rejected expression containing the anomalous `eb` term.
#[test]
fn lbm_narrative() {
    let report = formad_bench::lbm_report();
    assert!(
        report.contains("known safe write expressions")
            || report.contains("set of known safe write expressions")
    );
    assert!(report.matches("nce").count() >= 19, "{report}");
    assert!(report.contains("eb"), "{report}");
    assert!(report.contains("unsafe"), "{report}");
}
