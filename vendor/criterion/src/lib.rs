//! Offline shim for the subset of the `criterion` API this workspace's
//! benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros (including the `config = ...` form).
//!
//! Measurement is a simple mean-of-samples timing loop — adequate for the
//! relative comparisons the paper's figures need, with none of the real
//! crate's statistics. Results print as `bench <name> ... <mean>`.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: u64,
    /// Mean wall time per iteration of the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (also settles lazy init).
        black_box(routine());
        // Grow the batch until it runs long enough to time reliably.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples.max(1) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.last_mean = total / (iters.max(1) as u32);
    }
}

fn run_one(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_mean: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {name:<48} {:>12.3?}/iter", b.last_mean);
}

/// Group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n as u64;
        self
    }

    pub fn bench_function<S: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.criterion.sample_size, &mut f);
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function<S: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group<S: fmt::Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
