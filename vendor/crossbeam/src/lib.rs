//! Offline shim for the single `crossbeam` API this workspace uses:
//! `crossbeam::thread::scope` with `Scope::spawn` closures that receive
//! the scope as an argument. Backed by `std::thread::scope`.
//!
//! Behavioral difference: a panicking child thread makes the whole scope
//! panic at join (std semantics) instead of surfacing as `Err`; callers
//! here use `.expect(...)`, so the observable outcome is the same.

pub mod thread {
    use std::any::Any;

    /// Wrapper handing the scope back to spawned closures, mirroring the
    /// crossbeam `|scope| { scope.spawn(|_| ...) }` shape.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            });
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before return.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let hits = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            for _ in 0..8 {
                let hits = &hits;
                scope.spawn(move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }
}
