//! Offline drop-in replacement for the subset of `rand` 0.8 this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! and float ranges, and `SliceRandom::shuffle`/`choose`.
//!
//! The build container has no access to crates.io, so the real crate is
//! replaced by this deterministic splitmix64-based implementation. It is
//! NOT a cryptographic or statistically rigorous generator — it only has
//! to produce well-spread reproducible test/benchmark data.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }
    }
}

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                *self.start() + (*self.end() - *self.start()) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing sampling methods.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::{Rng, RngCore};

    /// Fisher–Yates shuffling and uniform element choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for k in (1..self.len()).rev() {
                let j = rng.gen_range(0..=k);
                self.swap(k, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&a));
            let b = rng.gen_range(1i64..=10);
            assert!((1..=10).contains(&b));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<i64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
