//! Value-generation strategies (shrink-free).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategy: `expand` wraps the strategy-so-far; the result
    /// mixes leaves and recursive cases up to `depth` levels. The `_size`
    /// and `_branch` hints of real proptest are accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth.max(1) {
            current = Union::new(vec![leaf.clone(), expand(current).boxed()]).boxed();
        }
        current
    }
}

/// Object-safe view used by [`BoxedStrategy`] and [`Union`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Shared type-erased strategy (clonable, unlike a `Box`).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice among alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u128) as usize;
        self.options[k].generate(rng)
    }
}

// --- Integer ranges ----------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// i128 ranges (span computed in u128; the workspace only uses small spans).
impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below(span) as i128)
    }
}

impl Strategy for RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = hi.wrapping_sub(lo) as u128 + 1;
        lo.wrapping_add(rng.below(span) as i128)
    }
}

// --- Tuples and arrays -------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|k| self[k].generate(rng))
    }
}

// --- Collections -------------------------------------------------------

/// `prop::collection::vec(element, len_range)`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            self.len.clone().generate(rng)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_arrays_tuples_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (-2i64..=2).generate(&mut rng);
            assert!((-2..=2).contains(&v));
            let arr = [-2i64..=2, -2i64..=2, -2i64..=2, -2i64..=2].generate(&mut rng);
            assert!(arr.iter().all(|c| (-2..=2).contains(c)));
            let (a, b) = (0usize..4, 0u8..3).generate(&mut rng);
            assert!(a < 4 && b < 3);
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = vec(0i64..10, 1..7).generate(&mut rng);
            assert!((1..7).contains(&v.len()));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = crate::prop_oneof![
            Just("i".to_string()),
            Just("n".to_string()),
            (1i64..9).prop_map(|v| v.to_string()),
        ];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty());
        }
    }

    #[test]
    fn recursive_terminates() {
        let leaf = crate::prop_oneof![Just("x".to_string()), Just("1".to_string())];
        let expr = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let v = expr.generate(&mut rng);
            assert!(v.len() < 200, "depth bound respected: {v}");
        }
    }
}
