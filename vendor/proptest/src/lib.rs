//! Offline mini-proptest: a deterministic, shrink-free reimplementation of
//! the `proptest` surface this workspace's property tests use.
//!
//! Supported: the `proptest!` macro (with `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! `prop_oneof!`, `Just`, integer range strategies, tuple/array strategies,
//! `Strategy::prop_map`/`prop_recursive`/`boxed`, and
//! `prop::collection::vec`.
//!
//! Each test case draws from a seeded splitmix64 stream (seed = case
//! index), so failures are reproducible run-to-run. There is no shrinking:
//! a failing case reports the generated values via `Debug` where the
//! assertion message includes them.

pub mod strategy;
pub mod test_runner;

pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{vec as prop_vec, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declare property tests. Mirrors proptest's
/// `proptest! { #![proptest_config(cfg)] #[test] fn name(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __strategy = ( $( $strat, )* );
            $crate::test_runner::run_cases(&__cfg, stringify!($name), |__rng| {
                let ( $( $pat, )* ) =
                    $crate::strategy::Strategy::generate(&__strategy, __rng);
                #[allow(unreachable_code)]
                (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: both `{:?}`", format!($($fmt)+), l),
            ));
        }
    }};
}

/// Discard the current case without counting it as run.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
