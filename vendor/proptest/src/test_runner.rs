//! Case runner and RNG for the mini-proptest.

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: fail the test with this message.
    Fail(String),
    /// `prop_assume!` rejection: draw a fresh case instead.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic splitmix64 stream used to generate case inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x1234_5678_9abc_def0,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) << 64) | self.next_u64() as u128) % n
    }
}

/// Drive `cfg.cases` successful cases of `f`, panicking on the first
/// failure. Rejected cases are retried (with a global retry cap).
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let mut seed: u64 = 0;
    while passed < cfg.cases {
        let mut rng = TestRng::from_seed(seed);
        seed += 1;
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > 10 * cfg.cases as u64 + 1000 {
                    panic!(
                        "proptest `{name}`: too many prop_assume rejections \
                         ({rejected}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed (case seed {}): {msg}", seed - 1);
            }
        }
    }
}
