//! Offline shim for `parking_lot::Mutex`: the panic-free `lock()` API on
//! top of `std::sync::Mutex` (poisoning is ignored, matching parking_lot
//! semantics of not poisoning at all).

use std::sync::TryLockError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1i32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
