! Figure 2 of the paper: indirect gather/scatter parallel loop.
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n + 7)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
