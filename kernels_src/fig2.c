/* Figure 2, C-flavoured dialect. */
void fig2(int n, const double x[n + 7], double y[n], const int c[n]) {
  int i;
  #pragma omp parallel for shared(x, y, c)
  for (i = 1; i <= n; i++) {
    y[c[i]] = x[c[i] + 7];
  }
}
